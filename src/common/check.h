// KGAG_CHECK / KGAG_DCHECK: fatal assertions for programming errors
// (contract violations), as opposed to recoverable errors which use Status.
#ifndef KGAG_COMMON_CHECK_H_
#define KGAG_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace kgag {
namespace internal {

/// Collects the streamed message and aborts on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* expr) {
    stream_ << "FATAL " << file << ":" << line << " check failed: " << expr
            << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace kgag

#define KGAG_CHECK(cond)                                              \
  (cond) ? (void)0                                                    \
         : (void)(::kgag::internal::FatalLogMessage(__FILE__, __LINE__, \
                                                    #cond))

// KGAG_CHECK with streaming requires the ternary trick to keep the stream
// lazily constructed; use an if instead for readability.
#undef KGAG_CHECK
#define KGAG_CHECK(cond)                                             \
  if (cond)                                                          \
    ;                                                                \
  else                                                               \
    ::kgag::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define KGAG_CHECK_EQ(a, b) KGAG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define KGAG_CHECK_NE(a, b) KGAG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define KGAG_CHECK_LT(a, b) KGAG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define KGAG_CHECK_LE(a, b) KGAG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define KGAG_CHECK_GT(a, b) KGAG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define KGAG_CHECK_GE(a, b) KGAG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define KGAG_DCHECK(cond) \
  if (true)               \
    ;                     \
  else                    \
    ::kgag::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#else
#define KGAG_DCHECK(cond) KGAG_CHECK(cond)
#endif

#endif  // KGAG_COMMON_CHECK_H_
