// Durable file IO: crash-safe whole-file writes and slurp-style reads.
//
// AtomicWriteFile never exposes a partially-written destination: the bytes
// go to a temporary file in the same directory, are fsync'd, and only then
// renamed over the target (rename(2) is atomic within a filesystem); the
// parent directory is fsync'd afterwards so the rename itself survives a
// power loss. Transient failures are retried with linear backoff before an
// IoError is returned, and the previous destination file — if any — is
// left untouched on every failure path.
#ifndef KGAG_COMMON_FILE_IO_H_
#define KGAG_COMMON_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kgag {

/// \brief Retry/backoff knobs for AtomicWriteFile.
struct AtomicWriteOptions {
  int max_attempts = 3;      ///< total tries before giving up
  int retry_backoff_ms = 5;  ///< sleep attempt*backoff between tries
  bool fsync_data = true;    ///< fsync file + parent dir (off in tests)
};

/// Atomically replaces `path` with `data` (temp write + fsync + rename).
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       const AtomicWriteOptions& options = {});

/// Reads the whole file into `out` (replacing its contents).
Status ReadFileToString(const std::string& path, std::string* out);

/// \brief Streaming counterpart of AtomicWriteFile: bytes are appended to
/// a same-directory temp file chunk by chunk and the destination only
/// appears — via fsync + rename — when Finish() succeeds. This is how
/// large artifacts (checkpoint containers, serving artifacts) are written
/// without ever materializing the encoded file in memory; callers that
/// need to back-patch a header they reserved up front use Seek().
///
/// Usage: Open -> Append* (and optionally Seek) -> Finish. Any error (or
/// destruction before Finish) abandons the temp file and leaves the
/// previous destination untouched.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates/truncates the temp file next to `path`.
  Status Open(const std::string& path, const AtomicWriteOptions& options = {});

  /// Appends `len` bytes at the current position.
  Status Append(const void* data, size_t len);
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }

  /// Moves the write position (absolute, from the file start) — for
  /// back-patching a reserved header after streaming the payload.
  Status Seek(uint64_t offset);

  /// Current write position from the file start.
  uint64_t position() const { return position_; }

  /// Flushes, fsyncs, and renames the temp file over the destination
  /// (plus a parent-directory fsync). The writer is closed afterwards.
  Status Finish();

  /// Closes and unlinks the temp file without touching the destination.
  /// Safe to call at any point; no-op once finished/abandoned.
  void Abandon();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string tmp_;
  uint64_t position_ = 0;
  bool fsync_data_ = true;
};

}  // namespace kgag

#endif  // KGAG_COMMON_FILE_IO_H_
