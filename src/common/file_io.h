// Durable file IO: crash-safe whole-file writes and slurp-style reads.
//
// AtomicWriteFile never exposes a partially-written destination: the bytes
// go to a temporary file in the same directory, are fsync'd, and only then
// renamed over the target (rename(2) is atomic within a filesystem); the
// parent directory is fsync'd afterwards so the rename itself survives a
// power loss. Transient failures are retried with linear backoff before an
// IoError is returned, and the previous destination file — if any — is
// left untouched on every failure path.
#ifndef KGAG_COMMON_FILE_IO_H_
#define KGAG_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace kgag {

/// \brief Retry/backoff knobs for AtomicWriteFile.
struct AtomicWriteOptions {
  int max_attempts = 3;      ///< total tries before giving up
  int retry_backoff_ms = 5;  ///< sleep attempt*backoff between tries
  bool fsync_data = true;    ///< fsync file + parent dir (off in tests)
};

/// Atomically replaces `path` with `data` (temp write + fsync + rename).
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       const AtomicWriteOptions& options = {});

/// Reads the whole file into `out` (replacing its contents).
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace kgag

#endif  // KGAG_COMMON_FILE_IO_H_
