// CSV output for experiment results, so sweeps can be re-plotted.
#ifndef KGAG_COMMON_CSV_WRITER_H_
#define KGAG_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace kgag {

/// \brief Writes rows of string cells to a CSV file, quoting cells that
/// contain separators.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  /// Returns IoError if the file cannot be opened.
  Status Open(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row.
  Status WriteRow(const std::vector<std::string>& row);

  /// Flushes and closes the stream.
  Status Close();

  bool is_open() const { return out_.is_open(); }

 private:
  static std::string EscapeCell(const std::string& cell);
  std::ofstream out_;
};

}  // namespace kgag

#endif  // KGAG_COMMON_CSV_WRITER_H_
