#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace kgag {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
std::atomic<int> g_next_thread_id{0};

/// Function-local so SetLogSink works during static initialization of
/// other translation units (a plain global std::function could be
/// re-constructed after an early install).
LogSink& SinkRef() {
  static LogSink* sink = new LogSink;  // leaked on exit
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// ISO-8601 UTC with millisecond resolution: 2026-08-05T12:34:56.789Z
void AppendTimestamp(std::ostringstream* os) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::system_clock;
  const system_clock::time_point now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];  // worst-case width of the %04d/%03d fields, not 25
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  *os << buf;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  LogSink previous = std::move(SinkRef());
  SinkRef() = std::move(sink);
  return previous;
}

int LogThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[";
    AppendTimestamp(&stream_);
    stream_ << " " << LevelName(level) << " t" << LogThreadId() << " "
            << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    const LogSink& sink = SinkRef();
    if (sink) {
      sink(level_, stream_.str());
    } else {
      std::cerr << stream_.str() << "\n";
    }
  }
}

}  // namespace internal
}  // namespace kgag
