#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

namespace kgag {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace kgag
