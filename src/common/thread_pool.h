// Fixed-size thread pool used for parallel evaluation sweeps. Training
// itself is single-threaded (determinism first), but ranking every test
// group over every test item is embarrassingly parallel.
#ifndef KGAG_COMMON_THREAD_POOL_H_
#define KGAG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgag {

/// \brief Simple work-queue thread pool.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace kgag

#endif  // KGAG_COMMON_THREAD_POOL_H_
