// Fixed-size work-queue thread pool backing the parallel paths: training
// fans out over fixed mini-batch shards (KgagConfig::train_threads, see
// DESIGN.md §9), the ranking evaluator fans out over test groups (see
// RankingEvaluator::set_thread_pool) and large GEMMs fan out over row
// panels (see kernels::SetComputeThreadPool). All write to disjoint
// preallocated slots so results are bit-identical to their serial runs.
#ifndef KGAG_COMMON_THREAD_POOL_H_
#define KGAG_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgag {

/// \brief Hooks for observing pool activity (the obs layer feeds these
/// into its metrics registry). Callbacks run on submitter and worker
/// threads concurrently, so implementations must be thread-safe, cheap,
/// and must never touch the pool (re-entrancy would deadlock).
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// A task entered the queue; `queue_depth` counts tasks waiting after
  /// the push.
  virtual void OnTaskQueued(size_t queue_depth) = 0;
  /// A task finished: `wait_us` queue latency (enqueue to start),
  /// `run_us` execution time.
  virtual void OnTaskDone(double wait_us, double run_us) = 0;
  /// A top-level ParallelFor started (nested inline runs don't report).
  virtual void OnParallelFor(size_t n, size_t grain) {
    (void)n;
    (void)grain;
  }
};

/// Installs a process-wide borrowed observer shared by every pool
/// (nullptr disables; the default). The observer must outlive all pools.
void SetThreadPoolObserver(ThreadPoolObserver* observer);
ThreadPoolObserver* GetThreadPoolObserver();

/// \brief Simple work-queue thread pool.
class ThreadPool {
 public:
  /// \param num_threads number of workers; 0 means hardware_concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// Equivalent to the chunked overload with grain = 1.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Chunked variant: workers claim `grain` consecutive indices per
  /// atomic fetch, so the per-index scheduling overhead is amortized when
  /// individual work items are tiny. Contract:
  ///   - every i in [0, n) is passed to fn exactly once;
  ///   - indices within a chunk run in ascending order on one thread,
  ///     but chunks run in no particular order relative to each other,
  ///     so fn must only touch per-index state (e.g. preallocated slots);
  ///   - the calling thread participates in the loop (a 1-worker pool
  ///     still makes progress even if every worker is busy);
  ///   - calls from inside a pool worker run the whole loop inline on
  ///     that worker — nested ParallelFor cannot deadlock the pool;
  ///   - fn must not throw (a throw escapes to the caller and any chunks
  ///     already handed to workers still complete).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t)>& fn);

  /// True when the calling thread is one of this or any pool's workers.
  /// Used to run nested parallel constructs inline instead of re-queuing.
  static bool InWorkerThread();

  /// Grain that splits n items into ~`chunks_per_worker` chunks per
  /// executing thread (workers + the participating caller): large enough
  /// to amortize the per-chunk atomic fetch, small enough that uneven
  /// items still load-balance. Callers with tiny per-item work should
  /// prefer this over a hardcoded grain so the choice tracks pool size.
  static size_t RecommendedGrain(size_t n, size_t workers,
                                 size_t chunks_per_worker = 8) {
    const size_t executors = workers + 1;
    const size_t chunks = executors * std::max<size_t>(1, chunks_per_worker);
    return std::max<size_t>(1, n / chunks);
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  /// Queued work plus its enqueue time (steady clock), so the observer
  /// can report queue latency.
  struct QueuedTask {
    std::packaged_task<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace kgag

#endif  // KGAG_COMMON_THREAD_POOL_H_
