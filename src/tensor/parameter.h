// Trainable parameters and their container. Parameters own value and
// gradient buffers; the Tape writes into grad during backward, optimizers
// read grad and update value.
#ifndef KGAG_TENSOR_PARAMETER_H_
#define KGAG_TENSOR_PARAMETER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace kgag {

/// \brief One trainable tensor (embedding table, weight matrix, or bias).
struct Parameter {
  Parameter(std::string name_in, size_t rows, size_t cols)
      : name(std::move(name_in)), value(rows, cols), grad(rows, cols) {}

  std::string name;
  Tensor value;
  Tensor grad;

  /// Position within the owning ParameterStore (creation order), assigned
  /// by ParameterStore::Create*. Lets per-thread gradient buffers index
  /// parameters in O(1) without a map. 0 for a store-less Parameter.
  size_t index = 0;

  /// Rows of an embedding table touched since the last ZeroGrad; lets the
  /// optimizer apply sparse updates. Empty + dense_touched means the whole
  /// tensor was used (e.g. weight matrices).
  std::unordered_set<size_t> touched_rows;
  bool dense_touched = false;

  void ZeroGrad() {
    if (dense_touched) {
      grad.Zero();
    } else {
      // Only rows that received gradient need clearing.
      Tensor zero_row(1, grad.cols());
      for (size_t r : touched_rows) grad.SetRow(r, zero_row);
    }
    touched_rows.clear();
    dense_touched = false;
  }
};

/// \brief Weight initialization schemes.
enum class Init {
  kZeros,
  kXavierUniform,   ///< U(-a, a), a = sqrt(6/(fan_in+fan_out))
  kXavierNormal,    ///< N(0, 2/(fan_in+fan_out))
  kNormal01,        ///< N(0, 0.1) — common for embedding tables
  kUniformSym,      ///< U(-0.05, 0.05)
};

/// Fills `t` in place according to the scheme.
void Initialize(Tensor* t, Init scheme, Rng* rng);

/// \brief Owns all parameters of a model; iteration order is creation order
/// so optimizer state lines up deterministically.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Creates a parameter initialized with the given scheme.
  Parameter* Create(const std::string& name, size_t rows, size_t cols,
                    Init init, Rng* rng);

  /// Creates a zero-initialized parameter (biases).
  Parameter* CreateZeros(const std::string& name, size_t rows, size_t cols);

  const std::vector<std::unique_ptr<Parameter>>& params() const {
    return params_;
  }
  size_t size() const { return params_.size(); }
  Parameter* at(size_t i) { return params_[i].get(); }

  /// Total number of scalar weights.
  size_t TotalWeights() const;

  /// Sum of squared values over all parameters (for L2 diagnostics).
  Scalar SquaredNorm() const;

  /// Sum of squared gradients over all parameters, visiting only touched
  /// rows of sparsely-updated tables. Meaningful between Backward and the
  /// optimizer step (which clears grads); the train loop publishes
  /// sqrt of this as the "train.grad_norm" gauge.
  Scalar GradSquaredNorm() const;

  /// Zeroes all gradients (respecting sparse touch tracking).
  void ZeroGrads();

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

}  // namespace kgag

#endif  // KGAG_TENSOR_PARAMETER_H_
