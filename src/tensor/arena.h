// Bump-pointer arena behind the autodiff tape (DESIGN.md §9).
//
// Building the per-example graph allocates hundreds of small tensors
// (node values, gradients, backward temporaries) that all die together
// when the tape is cleared. BumpArena turns that churn into pointer
// arithmetic: allocation bumps an offset inside a block, deallocation is
// a no-op, and Reset() rewinds the whole arena in O(1) once the graph is
// torn down.
//
// Lifetime rules (enforced by convention, see DESIGN.md §9):
//   - memory handed out is valid until the next Reset(); the owner
//     (Tape) resets only after destroying every container bound to the
//     arena's resource,
//   - anything that must outlive Reset() is *copied* out — Tensor's pmr
//     copy semantics land copies on the heap automatically,
//   - the arena itself must outlive all containers bound to it (Tape
//     declares it before its node storage).
#ifndef KGAG_TENSOR_ARENA_H_
#define KGAG_TENSOR_ARENA_H_

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace kgag {

/// \brief Monotonic allocator with O(1) Reset, usable as the
/// std::pmr::memory_resource behind pmr containers (Tensor storage).
///
/// Grows by appending geometrically larger blocks when a request does not
/// fit; Reset() coalesces a multi-block arena into one block sized to the
/// observed high-water mark, so a warmed-up arena serves every subsequent
/// graph build from a single block without touching malloc.
class BumpArena : public std::pmr::memory_resource {
 public:
  static constexpr size_t kDefaultInitialBytes = size_t{1} << 16;  // 64 KiB

  explicit BumpArena(size_t initial_bytes = kDefaultInitialBytes);

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Invalidates everything allocated so far and rewinds to an empty
  /// arena. Callers must have dropped all references into the arena
  /// first. Capacity is retained (and coalesced into one block after a
  /// growth episode).
  void Reset();

  /// Bytes handed out since the last Reset (before alignment padding is
  /// negligible for the tape's Scalar-dominated traffic).
  size_t bytes_in_use() const { return in_use_; }
  /// Total bytes owned across all blocks.
  size_t capacity() const;
  /// Blocks currently owned; 1 once the arena has warmed up.
  size_t block_count() const { return blocks_.size(); }
  /// Largest bytes_in_use observed at any Reset or grow, used to size the
  /// coalesced block.
  size_t high_water() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void* do_allocate(size_t bytes, size_t alignment) override;
  void do_deallocate(void* /*p*/, size_t /*bytes*/,
                     size_t /*alignment*/) override {
    // Monotonic: individual frees are no-ops; Reset reclaims everything.
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  Block& AppendBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;     ///< Index of the block being bumped.
  size_t in_use_ = 0;      ///< Bytes handed out since the last Reset.
  size_t high_water_ = 0;  ///< Max in_use_ ever observed.
};

}  // namespace kgag

#endif  // KGAG_TENSOR_ARENA_H_
