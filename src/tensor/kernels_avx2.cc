// AVX2+FMA build of the gemm_simd.inc row engine (compiled with
// -mavx2 -mfma; see src/tensor/CMakeLists.txt). Selected at runtime by
// kernels.cc only when the CPU reports both features.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "tensor/kernels.h"

namespace kgag {
namespace kernels {
namespace {

using VecD = __m256d;
constexpr size_t kLanes = 4;
inline VecD VecLoad(const Scalar* p) { return _mm256_loadu_pd(p); }
inline VecD VecSplat(Scalar s) { return _mm256_set1_pd(s); }
inline void VecStore(Scalar* p, VecD v) { _mm256_storeu_pd(p, v); }
inline Scalar VecSum(VecD v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

#include "tensor/gemm_simd.inc"

}  // namespace

void GemmRowsAvx2(bool trans_a, bool trans_b, size_t i_begin, size_t i_end,
                  size_t n, size_t k, const Scalar* a, size_t lda,
                  const Scalar* b, size_t ldb, Scalar* c, size_t ldc) {
  GemmRowsEntry(trans_a, trans_b, i_begin, i_end, n, k, a, lda, b, ldb, c,
                ldc);
}

}  // namespace kernels
}  // namespace kgag
