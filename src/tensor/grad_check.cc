#include "tensor/grad_check.h"

#include <cmath>
#include <sstream>

namespace kgag {

GradCheckReport CheckGradients(ParameterStore* store,
                               const std::function<Scalar()>& loss_fn,
                               const std::function<void()>& backward_fn,
                               Scalar eps) {
  store->ZeroGrads();
  // Mark everything dense so ZeroGrads fully clears between perturbations.
  for (const auto& p : store->params()) p->dense_touched = true;
  store->ZeroGrads();

  backward_fn();
  // Snapshot analytic gradients.
  std::vector<Tensor> analytic;
  analytic.reserve(store->size());
  for (const auto& p : store->params()) analytic.push_back(p->grad);
  for (const auto& p : store->params()) p->dense_touched = true;
  store->ZeroGrads();

  GradCheckReport report;
  for (size_t pi = 0; pi < store->size(); ++pi) {
    Parameter* p = store->at(pi);
    for (size_t i = 0; i < p->value.size(); ++i) {
      const Scalar orig = p->value[i];
      p->value[i] = orig + eps;
      const Scalar lp = loss_fn();
      p->value[i] = orig - eps;
      const Scalar lm = loss_fn();
      p->value[i] = orig;
      const Scalar numeric = (lp - lm) / (2.0 * eps);
      const Scalar analytic_g = analytic[pi][i];
      const Scalar denom =
          std::max({std::abs(numeric), std::abs(analytic_g), Scalar(1e-8)});
      const Scalar rel = std::abs(numeric - analytic_g) / denom;
      if (rel > report.max_rel_error) {
        report.max_rel_error = rel;
        std::ostringstream os;
        os << p->name << "[" << i << "] analytic=" << analytic_g
           << " numeric=" << numeric;
        report.worst_location = os.str();
      }
    }
  }
  return report;
}

}  // namespace kgag
