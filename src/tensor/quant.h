// Quantized matrix storage for the serving path (DESIGN.md §11).
//
// At million-entity scale the frozen per-entity rep tables dominate both
// resident memory and the memory bandwidth that bounds TopK latency, so
// bytes-per-entity is the scaling lever. A QuantizedMatrix stores a dense
// row-major matrix at a reduced precision:
//
//   kFp32  4 B/elem  values narrowed to IEEE float (convert-on-load)
//   kFp16  2 B/elem  values narrowed to IEEE half  (convert-on-load)
//   kInt8  1 B/elem  symmetric scale quantization: per row (or per block
//                    of `block` columns) q = round(x * 127 / absmax),
//                    scale = absmax / 127 stored as float; the dequantized
//                    value is q * scale
//
// kFp64 is the identity tier: the library Scalar (double) kept in a plain
// Tensor, never a QuantizedMatrix. Quantization happens once at freeze
// time (QuantizeMatrix) with a single scalar implementation, so encoded
// codes are platform-independent; the scoring kernels that consume a
// QuantizedMatrix live in tensor/kernels.h and are bit-exact across ISA
// dispatch tiers (see kernels_quant.cc).
#ifndef KGAG_TENSOR_QUANT_H_
#define KGAG_TENSOR_QUANT_H_

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace kgag {

/// Storage precision of a rep table. Values are the on-disk tags of the
/// KGAGSRV1 QNTM chunk — never renumber.
enum class QuantType : uint8_t {
  kFp64 = 0,  ///< unquantized library Scalar (legacy artifacts)
  kFp32 = 1,
  kFp16 = 2,
  kInt8 = 3,
};

/// "fp64" / "fp32" / "fp16" / "int8".
const char* QuantTypeName(QuantType type);

/// Parses a QuantTypeName spelling. Returns false on anything else.
bool ParseQuantType(std::string_view name, QuantType* out);

/// Bytes one element occupies at the given precision.
size_t QuantElemBytes(QuantType type);

/// \brief Dense row-major matrix at reduced precision. `data` holds the
/// packed codes (floats, halfs or int8s, little-endian); `scales` is only
/// populated for kInt8.
struct QuantizedMatrix {
  QuantType type = QuantType::kFp64;
  size_t rows = 0;
  size_t cols = 0;
  /// Columns sharing one int8 scale; 0 = the whole row. Ignored for
  /// fp32/fp16 (no scales).
  uint32_t block = 0;

  std::vector<uint8_t> data;   ///< rows * RowBytes() packed codes
  std::vector<float> scales;   ///< rows * ScalesPerRow() (kInt8 only)

  bool empty() const { return rows == 0 || cols == 0; }
  size_t RowBytes() const { return cols * QuantElemBytes(type); }
  /// Scales per row: ceil(cols/block) for kInt8 (1 when block == 0),
  /// otherwise 0.
  size_t ScalesPerRow() const;
  const uint8_t* RowData(size_t r) const { return data.data() + r * RowBytes(); }
  const float* RowScales(size_t r) const {
    return scales.data() + r * ScalesPerRow();
  }
  /// Payload bytes held in memory (codes + scales), the bytes-per-entity
  /// numerator reported by freeze_model and bench_serve.
  size_t PayloadBytes() const {
    return data.size() + scales.size() * sizeof(float);
  }

  bool operator==(const QuantizedMatrix&) const = default;
};

/// Scales one row of `cols` values carries at the given precision and
/// block geometry: ceil(cols/block) for kInt8 (1 when block == 0), 0 for
/// every float tier.
size_t QuantScalesPerRow(QuantType type, size_t cols, uint32_t block);

/// \brief Non-owning view of a dense row-major rep table at any storage
/// precision, INCLUDING the fp64 identity tier (codes are then the raw
/// little-endian doubles). This is the one shape the frozen scoring path
/// consumes, so the same kernels run whether the bytes live in an owned
/// Tensor/QuantizedMatrix or in an mmap'd KGAGSRV2 artifact — which is
/// what makes the mmap path bit-identical to the heap path by
/// construction.
struct RepView {
  QuantType type = QuantType::kFp64;
  size_t rows = 0;
  size_t cols = 0;
  uint32_t block = 0;           ///< int8 scale-block columns (0 = per-row)
  const uint8_t* codes = nullptr;  ///< rows * RowBytes() packed codes
  const float* scales = nullptr;   ///< rows * ScalesPerRow() (kInt8 only)

  bool empty() const { return rows == 0 || cols == 0 || codes == nullptr; }
  size_t ElemBytes() const { return QuantElemBytes(type); }
  size_t RowBytes() const { return cols * ElemBytes(); }
  size_t ScalesPerRow() const { return QuantScalesPerRow(type, cols, block); }
  const uint8_t* RowData(size_t r) const { return codes + r * RowBytes(); }
  const float* RowScales(size_t r) const {
    return scales + r * ScalesPerRow();
  }
  /// Codes + scales bytes the table occupies (resident cost).
  size_t PayloadBytes() const {
    return rows * (RowBytes() + ScalesPerRow() * sizeof(float));
  }
  /// The raw doubles of an fp64 view. Only valid when type == kFp64.
  const double* F64Data() const {
    return reinterpret_cast<const double*>(codes);
  }
};

/// fp64 view over a Tensor's storage (borrowed; the tensor must outlive
/// the view).
RepView MakeRepView(const Tensor& t);

/// View over a QuantizedMatrix's buffers (borrowed).
RepView MakeRepView(const QuantizedMatrix& q);

/// Quantizes a Tensor. `type` must not be kFp64 (a no-op "quantization"
/// stays a Tensor); `block` only affects kInt8.
QuantizedMatrix QuantizeMatrix(const Tensor& t, QuantType type,
                               uint32_t block = 0);

/// Quantizes `rows` rows of row-major fp64 data (`cols` wide) into
/// `codes` (rows * cols * QuantElemBytes(type) bytes) and, for kInt8,
/// `scales` (rows * QuantScalesPerRow(...) floats; may be null
/// otherwise). This is the exact per-row transform QuantizeMatrix
/// applies, exposed row-local so streamed/chunked encoders produce
/// bit-identical codes no matter how the table is split into chunks.
void QuantizeRows(QuantType type, uint32_t block, size_t rows, size_t cols,
                  const double* src, uint8_t* codes, float* scales);

/// Expands back to doubles (the values the scoring kernels see).
Tensor DequantizeMatrix(const QuantizedMatrix& q);

/// Dequantizes row `r` into out[0..cols).
void DequantizeRow(const QuantizedMatrix& q, size_t r, double* out);

/// Dequantizes row `r` of a view into out[0..cols). Handles every tier
/// including kFp64 (straight copy), so callers need no precision branch.
void DequantizeRow(const RepView& v, size_t r, double* out);

/// IEEE binary32 -> binary16, round-to-nearest-even (overflow to inf,
/// NaN payload preserved through the mantissa MSB). Bit-exact with the
/// hardware F16C conversion the AVX kernels use.
uint16_t FloatToHalf(float f);
/// IEEE binary16 -> binary32 (exact widening).
float HalfToFloat(uint16_t h);

/// Serializes a QuantizedMatrix:
///   u8 type | u64 rows | u64 cols | u32 block |
///   u64 nscales | f32 scales[] | u64 nbytes | codes[]
/// The stream layout is deterministic, so containers embedding it are
/// byte-stable across encode/decode round trips.
Status WriteQuantizedMatrix(std::ostream* out, const QuantizedMatrix& q);

/// Reads a WriteQuantizedMatrix record. Rejects unknown type tags,
/// shape/size inconsistencies and allocations beyond `max_elems`.
Status ReadQuantizedMatrix(std::istream* in, QuantizedMatrix* q,
                           uint64_t max_elems = uint64_t{1} << 32);

}  // namespace kgag

#endif  // KGAG_TENSOR_QUANT_H_
