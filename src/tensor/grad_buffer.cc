#include "tensor/grad_buffer.h"

#include "common/check.h"

namespace kgag {

DirectGradSink* DirectGradSink::Instance() {
  static DirectGradSink sink;
  return &sink;
}

void DirectGradSink::AddDense(Parameter* p, const Tensor& g) {
  p->grad.Add(g);
  p->dense_touched = true;
}

void DirectGradSink::AddRows(Parameter* p, std::span<const size_t> rows,
                             const Tensor& g) {
  KGAG_DCHECK(rows.size() == g.rows());
  const size_t cols = g.cols();
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    for (size_t c = 0; c < cols; ++c) p->grad.at(r, c) += g.at(i, c);
    p->touched_rows.insert(r);
  }
}

GradBuffer::GradBuffer(ParameterStore* store)
    : store_(store), entries_(store->size()) {}

void GradBuffer::AddDense(Parameter* p, const Tensor& g) {
  KGAG_DCHECK(p->index < entries_.size());
  Entry& e = entries_[p->index];
  if (e.dense.empty()) {
    e.dense = Tensor(g.rows(), g.cols());
  }
  e.dense.Add(g);
  e.dense_touched = true;
}

void GradBuffer::AddRows(Parameter* p, std::span<const size_t> rows,
                         const Tensor& g) {
  KGAG_DCHECK(p->index < entries_.size());
  KGAG_DCHECK(rows.size() == g.rows());
  Entry& e = entries_[p->index];
  const size_t cols = g.cols();
  if (e.cols == 0) e.cols = cols;
  KGAG_DCHECK(e.cols == cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    auto [it, inserted] = e.row_slot.try_emplace(r, e.row_order.size());
    if (inserted) {
      e.row_order.push_back(r);
      e.row_data.resize(e.row_data.size() + cols, 0.0);
    }
    Scalar* dst = e.row_data.data() + it->second * cols;
    const Scalar* src = g.data() + i * cols;
    for (size_t c = 0; c < cols; ++c) dst[c] += src[c];
  }
}

void GradBuffer::FlushInto() {
  for (size_t idx = 0; idx < entries_.size(); ++idx) {
    Entry& e = entries_[idx];
    if (!e.dense_touched && e.row_order.empty()) continue;
    Parameter* p = store_->at(idx);
    if (e.dense_touched) {
      p->grad.Add(e.dense);
      p->dense_touched = true;
    }
    for (size_t slot = 0; slot < e.row_order.size(); ++slot) {
      const size_t r = e.row_order[slot];
      const Scalar* src = e.row_data.data() + slot * e.cols;
      for (size_t c = 0; c < e.cols; ++c) p->grad.at(r, c) += src[c];
      p->touched_rows.insert(r);
    }
  }
}

void GradBuffer::Reset() {
  for (Entry& e : entries_) {
    if (e.dense_touched) {
      e.dense.Zero();
      e.dense_touched = false;
    }
    if (!e.row_order.empty()) {
      e.row_slot.clear();
      e.row_order.clear();
      e.row_data.clear();
    }
  }
}

bool GradBuffer::empty() const {
  for (const Entry& e : entries_) {
    if (e.dense_touched || !e.row_order.empty()) return false;
  }
  return true;
}

}  // namespace kgag
