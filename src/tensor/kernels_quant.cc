// Quantized scoring kernels: scalar reference implementations (the
// dispatch-independent oracle) plus the runtime ISA dispatch that routes
// the public QGemm* entry points to the AVX2/AVX-512 variants compiled in
// kernels_quant_avx2.cc / kernels_quant_avx512.cc. See kernels.h for the
// bit-identity contract and qgemm_lanes.inc for the shared accumulation
// discipline that makes it hold.
#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/obs.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

#ifdef KGAG_HAVE_ARCH_KERNELS
namespace kgag {
namespace kernels {
void QGemmInt8Avx2(size_t m, size_t n, size_t k, uint32_t block,
                   const int8_t* a, const float* a_scales, const int8_t* b,
                   const float* b_scales, double* c, size_t ldc);
void QGemmFp16Avx2(size_t m, size_t n, size_t k, const uint16_t* a,
                   const uint16_t* b, double* c, size_t ldc);
void QGemmFp32Avx2(size_t m, size_t n, size_t k, const float* a,
                   const float* b, double* c, size_t ldc);
void QGemmInt8Avx512(size_t m, size_t n, size_t k, uint32_t block,
                     const int8_t* a, const float* a_scales, const int8_t* b,
                     const float* b_scales, double* c, size_t ldc);
void QGemmFp16Avx512(size_t m, size_t n, size_t k, const uint16_t* a,
                     const uint16_t* b, double* c, size_t ldc);
void QGemmFp32Avx512(size_t m, size_t n, size_t k, const float* a,
                     const float* b, double* c, size_t ldc);
void SoftmaxScoreReduceAvx2(size_t l, size_t n, bool use_sp,
                            const double* sp, size_t ld, const double* pi,
                            double* out);
void SoftmaxScoreReduceAvx512(size_t l, size_t n, bool use_sp,
                              const double* sp, size_t ld, const double* pi,
                              double* out);
}  // namespace kernels
}  // namespace kgag
#endif

namespace kgag {
namespace kernels {
namespace {

#include "tensor/qgemm_lanes.inc"

void ConvertHalfRow(const uint16_t* in, size_t k, double* out) {
  for (size_t p = 0; p < k; ++p) {
    out[p] = static_cast<double>(HalfToFloat(in[p]));
  }
}

void ConvertFloatRow(const float* in, size_t k, double* out) {
  for (size_t p = 0; p < k; ++p) out[p] = static_cast<double>(in[p]);
}

using QInt8Fn = void (*)(size_t, size_t, size_t, uint32_t, const int8_t*,
                         const float*, const int8_t*, const float*, double*,
                         size_t);
using QFp16Fn = void (*)(size_t, size_t, size_t, const uint16_t*,
                         const uint16_t*, double*, size_t);
using QFp32Fn = void (*)(size_t, size_t, size_t, const float*, const float*,
                         double*, size_t);

using SoftmaxFn = void (*)(size_t, size_t, bool, const double*, size_t,
                           const double*, double*);

struct QuantDispatch {
  QInt8Fn int8_fn;
  QFp16Fn fp16_fn;
  QFp32Fn fp32_fn;
  SoftmaxFn softmax_fn;
  int level;
};

QuantDispatch PickQuantDispatch() {
#ifdef KGAG_HAVE_ARCH_KERNELS
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return {&QGemmInt8Avx512, &QGemmFp16Avx512, &QGemmFp32Avx512,
            &SoftmaxScoreReduceAvx512, 3};
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c")) {
    return {&QGemmInt8Avx2, &QGemmFp16Avx2, &QGemmFp32Avx2,
            &SoftmaxScoreReduceAvx2, 2};
  }
#endif
  return {&QGemmInt8Ref, &QGemmFp16Ref, &QGemmFp32Ref,
          &SoftmaxScoreReduceRef, 0};
}

const QuantDispatch g_quant = PickQuantDispatch();

}  // namespace

void QGemmInt8Ref(size_t m, size_t n, size_t k, uint32_t block,
                  const int8_t* a, const float* a_scales, const int8_t* b,
                  const float* b_scales, double* c, size_t ldc) {
  const size_t bs = block == 0 ? k : block;
  const size_t spr = block == 0 ? 1 : (k + block - 1) / block;
  for (size_t j = 0; j < n; ++j) {
    const int8_t* brow = b + j * k;
    const float* bsc = b_scales + j * spr;
    for (size_t i = 0; i < m; ++i) {
      const int8_t* arow = a + i * k;
      const float* asc = a_scales + i * spr;
      double sum = 0.0;
      for (size_t blk = 0, p0 = 0; p0 < k; ++blk, p0 += bs) {
        const size_t p1 = std::min(k, p0 + bs);
        int32_t acc = 0;
        for (size_t p = p0; p < p1; ++p) {
          acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
        }
        sum += static_cast<double>(acc) * (static_cast<double>(asc[blk]) *
                                           static_cast<double>(bsc[blk]));
      }
      c[i * ldc + j] = sum;
    }
  }
}

void QGemmFp16Ref(size_t m, size_t n, size_t k, const uint16_t* a,
                  const uint16_t* b, double* c, size_t ldc) {
  std::vector<double> abuf(m * k);
  for (size_t i = 0; i < m; ++i) ConvertHalfRow(a + i * k, k, &abuf[i * k]);
  std::vector<double> brow(k);
  for (size_t j = 0; j < n; ++j) {
    ConvertHalfRow(b + j * k, k, brow.data());
    for (size_t i = 0; i < m; ++i) {
      c[i * ldc + j] = DotLanes8Scalar(k, &abuf[i * k], brow.data());
    }
  }
}

void QGemmFp32Ref(size_t m, size_t n, size_t k, const float* a,
                  const float* b, double* c, size_t ldc) {
  std::vector<double> abuf(m * k);
  for (size_t i = 0; i < m; ++i) ConvertFloatRow(a + i * k, k, &abuf[i * k]);
  std::vector<double> brow(k);
  for (size_t j = 0; j < n; ++j) {
    ConvertFloatRow(b + j * k, k, brow.data());
    for (size_t i = 0; i < m; ++i) {
      c[i * ldc + j] = DotLanes8Scalar(k, &abuf[i * k], brow.data());
    }
  }
}

void QGemmInt8(size_t m, size_t n, size_t k, uint32_t block, const int8_t* a,
               const float* a_scales, const int8_t* b, const float* b_scales,
               double* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  KGAG_COUNTER_ADD("gemm.quant_calls", 1);
  g_quant.int8_fn(m, n, k, block, a, a_scales, b, b_scales, c, ldc);
}

void QGemmFp16(size_t m, size_t n, size_t k, const uint16_t* a,
               const uint16_t* b, double* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  KGAG_COUNTER_ADD("gemm.quant_calls", 1);
  g_quant.fp16_fn(m, n, k, a, b, c, ldc);
}

void QGemmFp32(size_t m, size_t n, size_t k, const float* a, const float* b,
               double* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  KGAG_COUNTER_ADD("gemm.quant_calls", 1);
  g_quant.fp32_fn(m, n, k, a, b, c, ldc);
}

void SoftmaxScoreReduceRef(size_t l, size_t n, bool use_sp,
                           const double* sp, size_t ld, const double* pi,
                           double* out) {
  // Per-candidate DAG (the SIMD tiers run this exact operation sequence
  // in every lane): alpha_i = (use_sp ? sp : 0) + pi_i; max seeded by
  // member 0; e_i = FastExp(alpha_i - mx) summed in member order; one
  // division; score accumulated in member order.
  std::vector<double> alpha(l);
  for (size_t p = 0; p < n; ++p) {
    for (size_t i = 0; i < l; ++i) {
      alpha[i] = (use_sp ? sp[i * ld + p] : 0.0) + pi[i];
    }
    double mx = alpha[0];
    for (size_t i = 1; i < l; ++i) mx = std::max(mx, alpha[i]);
    double sum = 0.0;
    for (size_t i = 0; i < l; ++i) {
      alpha[i] = FastExp(alpha[i] - mx);
      sum += alpha[i];
    }
    const double inv = 1.0 / sum;
    double score = 0.0;
    for (size_t i = 0; i < l; ++i) {
      score += (alpha[i] * inv) * sp[i * ld + p];
    }
    out[p] = score;
  }
}

void SoftmaxScoreReduce(size_t l, size_t n, bool use_sp, const double* sp,
                        size_t ld, const double* pi, double* out) {
  if (l == 0 || n == 0) return;
  g_quant.softmax_fn(l, n, use_sp, sp, ld, pi, out);
}

int QuantIsaLevel() { return g_quant.level; }

}  // namespace kernels
}  // namespace kgag
