#include "tensor/parameter.h"

#include <cmath>

namespace kgag {

void Initialize(Tensor* t, Init scheme, Rng* rng) {
  const double fan_in = static_cast<double>(t->rows());
  const double fan_out = static_cast<double>(t->cols());
  switch (scheme) {
    case Init::kZeros:
      t->Zero();
      break;
    case Init::kXavierUniform: {
      const double a = std::sqrt(6.0 / (fan_in + fan_out));
      for (size_t i = 0; i < t->size(); ++i) (*t)[i] = rng->Uniform(-a, a);
      break;
    }
    case Init::kXavierNormal: {
      const double s = std::sqrt(2.0 / (fan_in + fan_out));
      for (size_t i = 0; i < t->size(); ++i) (*t)[i] = rng->Normal(0.0, s);
      break;
    }
    case Init::kNormal01:
      for (size_t i = 0; i < t->size(); ++i) (*t)[i] = rng->Normal(0.0, 0.1);
      break;
    case Init::kUniformSym:
      for (size_t i = 0; i < t->size(); ++i)
        (*t)[i] = rng->Uniform(-0.05, 0.05);
      break;
  }
}

Parameter* ParameterStore::Create(const std::string& name, size_t rows,
                                  size_t cols, Init init, Rng* rng) {
  auto p = std::make_unique<Parameter>(name, rows, cols);
  Initialize(&p->value, init, rng);
  p->index = params_.size();
  params_.push_back(std::move(p));
  return params_.back().get();
}

Parameter* ParameterStore::CreateZeros(const std::string& name, size_t rows,
                                       size_t cols) {
  auto p = std::make_unique<Parameter>(name, rows, cols);
  p->index = params_.size();
  params_.push_back(std::move(p));
  return params_.back().get();
}

size_t ParameterStore::TotalWeights() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

Scalar ParameterStore::SquaredNorm() const {
  Scalar s = 0.0;
  for (const auto& p : params_) s += p->value.SquaredNorm();
  return s;
}

Scalar ParameterStore::GradSquaredNorm() const {
  Scalar s = 0.0;
  for (const auto& p : params_) {
    if (p->dense_touched) {
      s += p->grad.SquaredNorm();
    } else {
      const size_t cols = p->grad.cols();
      for (size_t r : p->touched_rows) {
        for (size_t c = 0; c < cols; ++c) {
          const Scalar g = p->grad.at(r, c);
          s += g * g;
        }
      }
    }
  }
  return s;
}

void ParameterStore::ZeroGrads() {
  for (const auto& p : params_) p->ZeroGrad();
}

}  // namespace kgag
