#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

// Defined in kernels_avx2.cc / kernels_avx512.cc, which compile the same
// gemm_tile.inc loops under wider target flags (see src/tensor/CMakeLists).
// Only ever called after the matching __builtin_cpu_supports check, so the
// portable build still runs on baseline x86-64 (and non-x86 entirely).
#ifdef KGAG_HAVE_ARCH_KERNELS
namespace kgag {
namespace kernels {
void GemmRowsAvx2(bool trans_a, bool trans_b, size_t i_begin, size_t i_end,
                  size_t n, size_t k, const Scalar* a, size_t lda,
                  const Scalar* b, size_t ldb, Scalar* c, size_t ldc);
void GemmRowsAvx512(bool trans_a, bool trans_b, size_t i_begin, size_t i_end,
                    size_t n, size_t k, const Scalar* a, size_t lda,
                    const Scalar* b, size_t ldb, Scalar* c, size_t ldc);
}  // namespace kernels
}  // namespace kgag
#endif

namespace kgag {
namespace kernels {
namespace {

#define KGAG_GEMM_MR 4
#define KGAG_GEMM_NR 8
#include "tensor/gemm_tile.inc"
#undef KGAG_GEMM_MR
#undef KGAG_GEMM_NR

// Row-panel granted to one worker; a multiple of every variant's register
// tile (see gemm_tile.inc static_assert), so the parallel partition
// reproduces the serial tiling exactly (bit-identical output).
constexpr size_t kMc = 128;
// Below this many multiply-adds the fork/join cost exceeds the win.
constexpr size_t kParallelMinMadds = size_t{1} << 22;

using RowsFn = void (*)(bool, bool, size_t, size_t, size_t, size_t,
                        const Scalar*, size_t, const Scalar*, size_t, Scalar*,
                        size_t);

// Dispatch tier actually selected at startup, published as the
// "gemm.isa_level" gauge: 0 = portable, 2 = AVX2+FMA, 3 = AVX-512.
int g_isa_level = 0;

RowsFn PickRowsFn() {
#ifdef KGAG_HAVE_ARCH_KERNELS
  if (__builtin_cpu_supports("avx512f")) {
    g_isa_level = 3;
    return &GemmRowsAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    g_isa_level = 2;
    return &GemmRowsAvx2;
  }
#endif
  g_isa_level = 0;
  return &GemmRowsEntry;
}

const RowsFn g_rows_fn = PickRowsFn();

std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

void Gemm(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
          const Scalar* a, size_t lda, const Scalar* b, size_t ldb, Scalar* c,
          size_t ldc) {
  if (m == 0 || n == 0) return;
  // Counters only in here — no trace span. Gemm is the hottest call in the
  // system and a span would read the clock twice per tiny matmul; the
  // per-thread relaxed increments below are what the <2% overhead budget
  // is sized against (see BENCH_obs_overhead.json).
  KGAG_COUNTER_ADD("gemm.calls", 1);
  KGAG_COUNTER_ADD("gemm.flops", 2 * m * n * k);
#if KGAG_OBS_ACTIVE
  static const bool kgag_obs_isa_published = [] {
    KGAG_GAUGE_SET("gemm.isa_level", g_isa_level);
    return true;
  }();
  (void)kgag_obs_isa_published;
#endif
  const RowsFn rows = g_rows_fn;
  ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr && !ThreadPool::InWorkerThread() &&
      m * n * k >= kParallelMinMadds && m >= 2 * kMc) {
    KGAG_COUNTER_ADD("gemm.parallel_calls", 1);
    const size_t bands = (m + kMc - 1) / kMc;
    pool->ParallelFor(bands, /*grain=*/1, [&](size_t band) {
      const size_t i_begin = band * kMc;
      const size_t i_end = std::min(i_begin + kMc, m);
      rows(trans_a, trans_b, i_begin, i_end, n, k, a, lda, b, ldb, c, ldc);
    });
  } else {
    rows(trans_a, trans_b, 0, m, n, k, a, lda, b, ldb, c, ldc);
  }
}

void GemmNaive(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
               const Scalar* a, size_t lda, const Scalar* b, size_t ldb,
               Scalar* c, size_t ldc) {
  if (!trans_a && !trans_b) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t p = 0; p < k; ++p) {
        const Scalar av = a[i * lda + p];
        if (av == 0.0) continue;
        const Scalar* brow = b + p * ldb;
        Scalar* crow = c + i * ldc;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (trans_a && !trans_b) {
    for (size_t p = 0; p < k; ++p) {
      const Scalar* arow = a + p * lda;
      const Scalar* brow = b + p * ldb;
      for (size_t i = 0; i < m; ++i) {
        const Scalar av = arow[i];
        if (av == 0.0) continue;
        Scalar* crow = c + i * ldc;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    for (size_t i = 0; i < m; ++i) {
      const Scalar* arow = a + i * lda;
      for (size_t j = 0; j < n; ++j) {
        const Scalar* brow = b + j * ldb;
        Scalar s = 0.0;
        for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        c[i * ldc + j] += s;
      }
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        Scalar s = 0.0;
        for (size_t p = 0; p < k; ++p) s += a[p * lda + i] * b[j * ldb + p];
        c[i * ldc + j] += s;
      }
    }
  }
}

void SetComputeThreadPool(ThreadPool* pool) {
  g_pool.store(pool, std::memory_order_release);
}

ThreadPool* GetComputeThreadPool() {
  return g_pool.load(std::memory_order_acquire);
}

}  // namespace kernels
}  // namespace kgag
