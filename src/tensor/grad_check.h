// Numerical gradient verification used by the test suite: compares the
// tape's analytic parameter gradients against central finite differences.
#ifndef KGAG_TENSOR_GRAD_CHECK_H_
#define KGAG_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <string>

#include "tensor/parameter.h"

namespace kgag {

/// \brief Result of a gradient check: largest relative error observed and
/// where it occurred.
struct GradCheckReport {
  Scalar max_rel_error = 0.0;
  std::string worst_location;
  bool ok(Scalar tol = 1e-5) const { return max_rel_error <= tol; }
};

/// Verifies d(loss)/d(param) for every parameter in the store.
///
/// \param store parameters the loss depends on
/// \param loss_fn builds the graph and returns the scalar loss value; it
///        must be deterministic and re-runnable (a fresh tape per call).
///        Analytic gradients are taken from a single backward pass of the
///        same function.
/// \param backward_fn runs one forward+backward, leaving gradients in the
///        store (gradients must be zero on entry).
/// \param eps finite-difference step.
GradCheckReport CheckGradients(
    ParameterStore* store, const std::function<Scalar()>& loss_fn,
    const std::function<void()>& backward_fn, Scalar eps = 1e-5);

}  // namespace kgag

#endif  // KGAG_TENSOR_GRAD_CHECK_H_
