// Reverse-mode automatic differentiation on a per-instance tape.
//
// Usage:
//   Tape tape;
//   Var x = tape.Leaf(param);           // dense parameter leaf
//   Var e = tape.Gather(table, {3, 7}); // embedding rows (sparse grads)
//   Var y = tape.Sigmoid(tape.MatMul(e, x));
//   Var loss = tape.Mean(y);
//   tape.Backward(loss);                // accumulates into Parameter::grad
//
// The tape is rebuilt for every training instance (define-by-run);
// Clear() or destruction releases all nodes. Gradients accumulate into
// Parameter buffers (or a per-shard GradBuffer when a sink is installed),
// so a mini-batch is several forward/backward passes followed by one
// optimizer step.
//
// Allocation (DESIGN.md §9): each tape owns a BumpArena. Node values,
// node gradients, backward temporaries and gathered row-index arrays all
// live on the arena; Clear() rewinds it in O(1) instead of freeing the
// ~hundreds of per-example allocations individually. Backward closures
// are stored inline in the node (no heap), which requires their captures
// to be trivially copyable — handles, scalars and raw pointers into the
// arena, never owning containers.
#ifndef KGAG_TENSOR_TAPE_H_
#define KGAG_TENSOR_TAPE_H_

#include <cstdint>
#include <memory_resource>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "tensor/arena.h"
#include "tensor/grad_buffer.h"
#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace kgag {

class Tape;

/// \brief Handle to a node on the tape. Cheap to copy; only valid for the
/// tape that created it, until the next Clear().
struct Var {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
};

namespace detail {

/// \brief Fixed-capacity inline callable for backward closures.
///
/// Every op node used to carry a std::function, whose captured state is
/// heap-allocated past the small-buffer limit — one malloc/free per node
/// per example. Closure captures on the tape are all trivially copyable
/// (Var, Scalar, Parameter*, arena pointers + lengths), so they are
/// stored inline and relocate with the node by memcpy.
class BackwardClosure {
 public:
  static constexpr size_t kCapacity = 48;

  BackwardClosure() = default;
  BackwardClosure(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, BackwardClosure> &&
             !std::is_same_v<std::decay_t<F>, std::nullptr_t>)
  BackwardClosure(F f) {  // NOLINT: implicit, mirrors std::function
    static_assert(std::is_trivially_copyable_v<F>,
                  "backward closures must capture trivially copyable state "
                  "(Var/Scalar/pointers); own containers via the arena");
    static_assert(sizeof(F) <= kCapacity, "closure exceeds inline capacity");
    static_assert(alignof(F) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buf_)) F(f);
    invoke_ = [](const void* buf, Tape* t, const Tensor& g) {
      (*static_cast<const F*>(buf))(t, g);
    };
  }

  void operator()(Tape* t, const Tensor& g) const { invoke_(buf_, t, g); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  void (*invoke_)(const void*, Tape*, const Tensor&) = nullptr;
};

}  // namespace detail

/// \brief Computation graph recording values and backward closures.
class Tape {
 public:
  Tape() = default;
  /// `use_arena` false keeps every tensor on the heap (benchmark baseline
  /// for the arena win); row-index arrays still use the arena either way
  /// since closures reference them by pointer.
  explicit Tape(bool use_arena) : use_arena_(use_arena) {}
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- Leaves -----------------------------------------------------------

  /// Whole parameter tensor as a differentiable leaf.
  Var Leaf(Parameter* p);
  /// Rows `rows` of an embedding table as a (k x d) differentiable leaf;
  /// backward scatters into the touched rows only. The indices are copied
  /// onto the tape's arena (callers may pass views of their own storage).
  Var Gather(Parameter* table, std::span<const size_t> rows);
  /// Convenience overload for 32-bit id lists (entity ids); widened onto
  /// the arena without building a size_t vector at the call site.
  Var Gather(Parameter* table, std::span<const int32_t> rows);
  Var Gather(Parameter* table, std::initializer_list<size_t> rows) {
    return Gather(table, std::span<const size_t>(rows.begin(), rows.size()));
  }
  /// Non-differentiable constant.
  Var Constant(Tensor t);

  // ---- Elementwise / shape ops -----------------------------------------

  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);          ///< Hadamard product.
  Var ScalarMul(Var a, Scalar s);
  Var AddScalar(Var a, Scalar s);
  Var Neg(Var a) { return ScalarMul(a, -1.0); }
  Var MatMul(Var a, Var b);
  Var Transpose(Var a);
  /// Concatenates along columns: [A | B | ...]; all parts share row count.
  Var ConcatCols(std::span<const Var> parts);
  Var ConcatCols(std::initializer_list<Var> parts) {
    return ConcatCols(std::span<const Var>(parts.begin(), parts.size()));
  }
  /// Stacks along rows; all parts share column count.
  Var ConcatRows(std::span<const Var> parts);
  Var ConcatRows(std::initializer_list<Var> parts) {
    return ConcatRows(std::span<const Var>(parts.begin(), parts.size()));
  }
  /// Row r of a as a 1xC node.
  Var SliceRow(Var a, size_t r);
  /// (k x d) + (1 x d) with the row vector broadcast over rows.
  Var AddRowBroadcast(Var a, Var row);
  /// Row-major reinterpretation to (rows x cols); size must match.
  Var Reshape(Var a, size_t rows, size_t cols);
  /// Stacks n copies of a 1xd row into an (n x d) matrix.
  Var RepeatRows(Var row, size_t n);
  /// Segment-wise weighted sum: weights (n x K) and values ((n*K) x d)
  /// produce (n x d) where out[i] = Σ_k w[i,k] * values[i*K + k]. This is
  /// the neighbor-aggregation kernel of Eq. (1)/(7): one segment per
  /// parent node, K sampled neighbors each.
  Var SegmentWeightedSumRows(Var weights, Var values);

  // ---- Nonlinearities ----------------------------------------------------

  Var Relu(Var a);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  /// Numerically stable log(1 + exp(x)).
  Var Softplus(Var a);
  Var Log(Var a);
  /// Softmax independently over each row.
  Var SoftmaxRows(Var a);

  // ---- Reductions --------------------------------------------------------

  /// Column-wise sum: (k x d) -> (1 x d).
  Var SumRows(Var a);
  /// Column-wise mean: (k x d) -> (1 x d).
  Var MeanRows(Var a);
  /// Per-row dot product of same-shape tensors: (k x d),(k x d) -> (k x 1).
  Var RowDot(Var a, Var b);
  /// Sum of all elements -> (1 x 1).
  Var Sum(Var a);
  /// Mean of all elements -> (1 x 1).
  Var Mean(Var a);
  /// Full dot product of two same-shape tensors -> (1 x 1).
  Var DotAll(Var a, Var b) { return Sum(Mul(a, b)); }
  /// Minimum element -> (1 x 1); gradient flows to the (first) argmin.
  Var MinAll(Var a);
  /// Maximum element -> (1 x 1); gradient flows to the (first) argmax.
  Var MaxAll(Var a);

  // ---- Execution ---------------------------------------------------------

  /// WARNING: the returned reference is invalidated by the next op added
  /// to the tape (node storage may reallocate) and by Clear() (the arena
  /// rewinds); copy it if you create more nodes before reading. Copies
  /// always land on the heap (pmr copy semantics), so a copy is safe to
  /// keep past Clear().
  const Tensor& value(Var v) const;
  /// Gradient of the last Backward target w.r.t. node v. Valid after
  /// Backward and before the next mutation of the tape.
  const Tensor& grad(Var v) const;

  /// Runs reverse-mode accumulation seeded with d(loss)/d(loss) = 1.
  /// `loss` must be a 1x1 node. Parameter gradients accumulate (+=)
  /// through the installed GradSink — by default straight into
  /// Parameter::grad, so call ParameterStore::ZeroGrads between steps.
  void Backward(Var loss);

  /// Releases all nodes and rewinds the arena; previously returned Vars
  /// (and references into the tape) become invalid. Node storage and
  /// arena capacity are retained, so a warmed-up tape rebuilds the next
  /// graph without allocating.
  void Clear();

  /// Routes parameter gradients produced by Backward. The sink must
  /// outlive the tape or be reset first; nullptr restores the default
  /// direct-to-Parameter::grad sink.
  void set_grad_sink(GradSink* sink) {
    sink_ = sink != nullptr ? sink : DirectGradSink::Instance();
  }
  GradSink* grad_sink() const { return sink_; }

  /// Pre-sizes node storage (e.g. to the node count of the previous
  /// example) so graph construction never reallocates mid-build.
  void ReserveNodes(size_t n) { nodes_.reserve(n); }

  size_t num_nodes() const { return nodes_.size(); }
  /// The tape's arena, for allocation-behaviour tests and stats.
  const BumpArena& arena() const { return arena_; }

 private:
  // Backward closure: receives the tape so parent grads can be addressed
  // even if nodes_ reallocated between creation and backward.
  using BackwardFn = detail::BackwardClosure;

  struct Node {
    Tensor value;
    Tensor grad;
    BackwardFn backward;   // empty for constants / leaves without params
    bool requires_grad = false;
  };

  Var Emplace(Tensor value, bool requires_grad, BackwardFn backward);
  Node& node(Var v);
  const Node& node(Var v) const;
  /// Accumulates g into node v's grad buffer (allocating if needed).
  void AccumulateGrad(Var v, const Tensor& g);

  /// Memory resource node tensors are built on.
  std::pmr::memory_resource* node_resource() {
    return use_arena_ ? static_cast<std::pmr::memory_resource*>(&arena_)
                      : std::pmr::get_default_resource();
  }
  /// Zeroed (rows x cols) tensor on the tape's resource. Valid until
  /// Clear(); used for node values and backward temporaries.
  Tensor NewTensor(size_t rows, size_t cols) {
    return Tensor(rows, cols, node_resource());
  }
  /// Copy of src on the tape's resource.
  Tensor CloneTensor(const Tensor& src);
  /// Copies indices onto the arena (always the arena, independent of
  /// use_arena_: closures keep raw pointers into this storage).
  std::span<const size_t> ArenaCopy(std::span<const size_t> v);
  std::span<const Var> ArenaCopy(std::span<const Var> v);

  bool use_arena_ = true;
  // The arena must outlive nodes_ (members destroy in reverse order).
  BumpArena arena_;
  std::vector<Node> nodes_;
  GradSink* sink_ = DirectGradSink::Instance();
};

}  // namespace kgag

#endif  // KGAG_TENSOR_TAPE_H_
