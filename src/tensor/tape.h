// Reverse-mode automatic differentiation on a per-instance tape.
//
// Usage:
//   Tape tape;
//   Var x = tape.Leaf(param);           // dense parameter leaf
//   Var e = tape.Gather(table, {3, 7}); // embedding rows (sparse grads)
//   Var y = tape.Sigmoid(tape.MatMul(e, x));
//   Var loss = tape.Mean(y);
//   tape.Backward(loss);                // accumulates into Parameter::grad
//
// The tape is rebuilt for every training instance (define-by-run); Clear()
// or destruction releases all nodes. Gradients accumulate into the
// Parameter buffers, so a mini-batch is several forward/backward passes
// followed by one optimizer step.
#ifndef KGAG_TENSOR_TAPE_H_
#define KGAG_TENSOR_TAPE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace kgag {

/// \brief Handle to a node on the tape. Cheap to copy; only valid for the
/// tape that created it, until the next Clear().
struct Var {
  int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// \brief Computation graph recording values and backward closures.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- Leaves -----------------------------------------------------------

  /// Whole parameter tensor as a differentiable leaf.
  Var Leaf(Parameter* p);
  /// Rows `rows` of an embedding table as a (k x d) differentiable leaf;
  /// backward scatters into the touched rows only.
  Var Gather(Parameter* table, std::vector<size_t> rows);
  /// Non-differentiable constant.
  Var Constant(Tensor t);

  // ---- Elementwise / shape ops -----------------------------------------

  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);          ///< Hadamard product.
  Var ScalarMul(Var a, Scalar s);
  Var AddScalar(Var a, Scalar s);
  Var Neg(Var a) { return ScalarMul(a, -1.0); }
  Var MatMul(Var a, Var b);
  Var Transpose(Var a);
  /// Concatenates along columns: [A | B | ...]; all parts share row count.
  Var ConcatCols(const std::vector<Var>& parts);
  /// Stacks along rows; all parts share column count.
  Var ConcatRows(const std::vector<Var>& parts);
  /// Row r of a as a 1xC node.
  Var SliceRow(Var a, size_t r);
  /// (k x d) + (1 x d) with the row vector broadcast over rows.
  Var AddRowBroadcast(Var a, Var row);
  /// Row-major reinterpretation to (rows x cols); size must match.
  Var Reshape(Var a, size_t rows, size_t cols);
  /// Stacks n copies of a 1xd row into an (n x d) matrix.
  Var RepeatRows(Var row, size_t n);
  /// Segment-wise weighted sum: weights (n x K) and values ((n*K) x d)
  /// produce (n x d) where out[i] = Σ_k w[i,k] * values[i*K + k]. This is
  /// the neighbor-aggregation kernel of Eq. (1)/(7): one segment per
  /// parent node, K sampled neighbors each.
  Var SegmentWeightedSumRows(Var weights, Var values);

  // ---- Nonlinearities ----------------------------------------------------

  Var Relu(Var a);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  /// Numerically stable log(1 + exp(x)).
  Var Softplus(Var a);
  Var Log(Var a);
  /// Softmax independently over each row.
  Var SoftmaxRows(Var a);

  // ---- Reductions --------------------------------------------------------

  /// Column-wise sum: (k x d) -> (1 x d).
  Var SumRows(Var a);
  /// Column-wise mean: (k x d) -> (1 x d).
  Var MeanRows(Var a);
  /// Per-row dot product of same-shape tensors: (k x d),(k x d) -> (k x 1).
  Var RowDot(Var a, Var b);
  /// Sum of all elements -> (1 x 1).
  Var Sum(Var a);
  /// Mean of all elements -> (1 x 1).
  Var Mean(Var a);
  /// Full dot product of two same-shape tensors -> (1 x 1).
  Var DotAll(Var a, Var b) { return Sum(Mul(a, b)); }
  /// Minimum element -> (1 x 1); gradient flows to the (first) argmin.
  Var MinAll(Var a);
  /// Maximum element -> (1 x 1); gradient flows to the (first) argmax.
  Var MaxAll(Var a);

  // ---- Execution ---------------------------------------------------------

  /// WARNING: the returned reference is invalidated by the next op added
  /// to the tape (node storage may reallocate); copy it if you create more
  /// nodes before reading.
  const Tensor& value(Var v) const;
  /// Gradient of the last Backward target w.r.t. node v. Valid after
  /// Backward and before the next mutation of the tape.
  const Tensor& grad(Var v) const;

  /// Runs reverse-mode accumulation seeded with d(loss)/d(loss) = 1.
  /// `loss` must be a 1x1 node. Parameter gradients accumulate (+=) into
  /// Parameter::grad, so call ParameterStore::ZeroGrads between steps.
  void Backward(Var loss);

  /// Releases all nodes; previously returned Vars become invalid.
  void Clear();

  size_t num_nodes() const { return nodes_.size(); }

 private:
  // Backward closure: receives the tape so parent grads can be addressed
  // even if nodes_ reallocated between creation and backward.
  using BackwardFn = std::function<void(Tape*, const Tensor& out_grad)>;

  struct Node {
    Tensor value;
    Tensor grad;
    BackwardFn backward;   // empty for constants / leaves without params
    bool requires_grad = false;
  };

  Var Emplace(Tensor value, bool requires_grad, BackwardFn backward);
  Node& node(Var v);
  const Node& node(Var v) const;
  /// Accumulates g into node v's grad buffer (allocating if needed).
  void AccumulateGrad(Var v, const Tensor& g);

  std::vector<Node> nodes_;
};

}  // namespace kgag

#endif  // KGAG_TENSOR_TAPE_H_
