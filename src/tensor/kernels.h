// Dense GEMM kernels behind MatMul / MatMulTransA / MatMulTransB: one
// cache-blocked, register-tiled micro-kernel serves all three transpose
// combinations, with an optional ThreadPool-parallel row partition for
// large shapes. `GemmNaive` preserves the original triple-loop kernel as
// the reference baseline for benches and cross-checking tests.
#ifndef KGAG_TENSOR_KERNELS_H_
#define KGAG_TENSOR_KERNELS_H_

#include <cstddef>

namespace kgag {

class ThreadPool;

using Scalar = double;

namespace kernels {

/// C(m×n) += op(A) · op(B) where op(A) is m×k and op(B) is k×n.
/// `trans_a` reads A as its transpose (A stored k×m, lda = m); likewise
/// `trans_b` (B stored n×k, ldb = k). C must be preallocated; existing
/// contents are accumulated into, so zero C first for a plain product.
/// Deterministic: output bits do not depend on the thread count.
void Gemm(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
          const Scalar* a, size_t lda, const Scalar* b, size_t ldb, Scalar* c,
          size_t ldc);

/// The seed triple-loop kernel (including its data-dependent zero-skip
/// branch), kept verbatim as the perf baseline for `bench_kernels` and as
/// an independent oracle for kernel tests. Same accumulate contract.
void GemmNaive(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
               const Scalar* a, size_t lda, const Scalar* b, size_t ldb,
               Scalar* c, size_t ldc);

/// Installs a borrowed pool used to split large GEMMs across rows of C
/// (nullptr restores the serial path). Row panels are disjoint and the
/// panel size is a multiple of the register tile, so parallel results are
/// bit-identical to serial. Calls from inside a pool worker always run
/// serially (no nested fan-out, no deadlock).
void SetComputeThreadPool(ThreadPool* pool);
ThreadPool* GetComputeThreadPool();

}  // namespace kernels
}  // namespace kgag

#endif  // KGAG_TENSOR_KERNELS_H_
