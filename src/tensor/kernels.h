// Dense GEMM kernels behind MatMul / MatMulTransA / MatMulTransB: one
// cache-blocked, register-tiled micro-kernel serves all three transpose
// combinations, with an optional ThreadPool-parallel row partition for
// large shapes. `GemmNaive` preserves the original triple-loop kernel as
// the reference baseline for benches and cross-checking tests.
//
// The QGemm* family scores quantized rep tables (DESIGN.md §11): int8
// codes with int32 accumulation, and fp16/fp32 convert-on-load paths.
// Like Gemm they dispatch to ISA-specific variants at runtime, but with a
// stronger contract: every tier produces BIT-IDENTICAL output (int8 sums
// are exact integers; the float paths fix an 8-lane FMA accumulation
// discipline that scalar and SIMD code replicate exactly), so serving
// scores never depend on the machine the server runs on.
#ifndef KGAG_TENSOR_KERNELS_H_
#define KGAG_TENSOR_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace kgag {

class ThreadPool;

using Scalar = double;

namespace kernels {

/// C(m×n) += op(A) · op(B) where op(A) is m×k and op(B) is k×n.
/// `trans_a` reads A as its transpose (A stored k×m, lda = m); likewise
/// `trans_b` (B stored n×k, ldb = k). C must be preallocated; existing
/// contents are accumulated into, so zero C first for a plain product.
/// Deterministic: output bits do not depend on the thread count.
void Gemm(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
          const Scalar* a, size_t lda, const Scalar* b, size_t ldb, Scalar* c,
          size_t ldc);

/// The seed triple-loop kernel (including its data-dependent zero-skip
/// branch), kept verbatim as the perf baseline for `bench_kernels` and as
/// an independent oracle for kernel tests. Same accumulate contract.
void GemmNaive(bool trans_a, bool trans_b, size_t m, size_t n, size_t k,
               const Scalar* a, size_t lda, const Scalar* b, size_t ldb,
               Scalar* c, size_t ldc);

/// Installs a borrowed pool used to split large GEMMs across rows of C
/// (nullptr restores the serial path). Row panels are disjoint and the
/// panel size is a multiple of the register tile, so parallel results are
/// bit-identical to serial. Calls from inside a pool worker always run
/// serially (no nested fan-out, no deadlock).
void SetComputeThreadPool(ThreadPool* pool);
ThreadPool* GetComputeThreadPool();

// ---------------------------------------------------------------------------
// Quantized scoring kernels. All compute C(m×n) = A(m×k) · B(n×k)ᵀ with
// A and B row-major code matrices and C a double matrix (OVERWRITTEN, not
// accumulated; `ldc` is C's row stride). The loop streams B once with A
// held hot, the serving-shaped access pattern (few member rows against a
// large item table).

/// int8 codes with per-row (block == 0) or per-`block`-columns scales:
/// every scale group accumulates an exact int32 dot, then
///   C(i,j) = Σ_blocks double(acc_b) · (double(a_scale_b) · double(b_scale_b))
/// summed in block order. a_scales/b_scales hold ceil(k/block) floats per
/// row (1 when block == 0).
void QGemmInt8(size_t m, size_t n, size_t k, uint32_t block, const int8_t* a,
               const float* a_scales, const int8_t* b, const float* b_scales,
               double* c, size_t ldc);

/// IEEE half codes, converted to double on load (exact widening) and
/// reduced with the fixed 8-lane FMA discipline.
void QGemmFp16(size_t m, size_t n, size_t k, const uint16_t* a,
               const uint16_t* b, double* c, size_t ldc);

/// IEEE float codes, converted to double on load (exact widening).
void QGemmFp32(size_t m, size_t n, size_t k, const float* a, const float* b,
               double* c, size_t ldc);

/// Scalar reference implementations: the dispatch-independent oracle the
/// property tests compare every ISA tier against (exact equality).
void QGemmInt8Ref(size_t m, size_t n, size_t k, uint32_t block,
                  const int8_t* a, const float* a_scales, const int8_t* b,
                  const float* b_scales, double* c, size_t ldc);
void QGemmFp16Ref(size_t m, size_t n, size_t k, const uint16_t* a,
                  const uint16_t* b, double* c, size_t ldc);
void QGemmFp32Ref(size_t m, size_t n, size_t k, const float* a,
                  const float* b, double* c, size_t ldc);

/// The frozen-path softmax score reduce (DESIGN.md §10): given the
/// sp-logit block S (l members × n candidates, row-major, leading
/// dimension `ld`) and per-member peer-influence logits pi[0..l), emits
///   out[p] = Σ_i softmax_i((use_sp ? S(i,p) : 0) + pi[i]) · S(i,p)
/// for every candidate p. The softmax follows PreferenceAggregator's
/// max-subtract scheme (member 0 seeds the max) on FastExp, with one
/// division per candidate. Same bit-identity contract as QGemm*: the
/// SIMD tiers vectorize ACROSS candidates, so every lane runs the
/// scalar reference's exact per-item operation DAG and all tiers agree
/// bitwise.
void SoftmaxScoreReduce(size_t l, size_t n, bool use_sp, const double* sp,
                        size_t ld, const double* pi, double* out);

/// Scalar reference / dispatch-independent oracle for SoftmaxScoreReduce.
void SoftmaxScoreReduceRef(size_t l, size_t n, bool use_sp,
                           const double* sp, size_t ld, const double* pi,
                           double* out);

/// Dispatch tier the quantized kernels selected at startup:
/// 0 = portable scalar, 2 = AVX2+FMA+F16C, 3 = AVX-512.
int QuantIsaLevel();

/// Fast deterministic e^x for the serving softmax reduce, where libm's
/// exp is the single hottest call (members × items evaluations per
/// request). Cephes-style range reduction x = n·ln2 + r (|r| ≤ ~0.347,
/// two-constant subtraction; n rounded by the 1.5·2^52 shifter trick)
/// plus a degree-11 Horner polynomial and an exponent-bit 2^n scale.
/// Only IEEE add/mul/sub, min/max and bit ops — no fma, no tables, no
/// branches, no libm — so it is fast in the portable build, trivially
/// lane-vectorizable (SoftmaxScoreReduce's SIMD tiers replicate this
/// exact DAG per lane), and bit-reproducible on any round-to-nearest
/// platform, with FastExp(0) == 1 exactly. Finite x is clamped to
/// [-708, 709] (e^x saturates to ~3e-308 / ~8e307 at the rails, both
/// normal doubles); NaN is outside the contract. Relative error ~1e-14,
/// orders below the score gaps ranking cares about.
inline double FastExp(double x) {
  x = std::min(std::max(x, -708.0), 709.0);
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kShifter = 6755399441055744.0;  // 1.5 * 2^52
  constexpr double kLn2Hi = 6.93145751953125e-01;  // 21 bits, n*hi exact
  constexpr double kLn2Lo = 1.42860682030941723212e-06;
  const double shifted = x * kLog2e + kShifter;
  const double n = shifted - kShifter;  // nearest integer to x*log2(e)
  const double r = (x - n * kLn2Hi) - n * kLn2Lo;
  double p = 1.0 / 39916800.0;      // 1/11!
  p = p * r + 1.0 / 3628800.0;      // 1/10!
  p = p * r + 1.0 / 362880.0;       // 1/9!
  p = p * r + 1.0 / 40320.0;        // 1/8!
  p = p * r + 1.0 / 5040.0;         // 1/7!
  p = p * r + 1.0 / 720.0;          // 1/6!
  p = p * r + 1.0 / 120.0;          // 1/5!
  p = p * r + 1.0 / 24.0;           // 1/4!
  p = p * r + 1.0 / 6.0;            // 1/3!
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // 2^n through the exponent field: |x| ≤ 709 keeps n + 1023 in the
  // normal range [1, 2046].
  const uint64_t bits = static_cast<uint64_t>(
                            static_cast<int64_t>(n) + 1023)
                        << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

}  // namespace kernels
}  // namespace kgag

#endif  // KGAG_TENSOR_KERNELS_H_
