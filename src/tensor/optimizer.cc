#include "tensor/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/binary_io.h"

namespace kgag {

namespace {
// Tags the optimizer-state blob so a checkpoint written by one optimizer
// kind is rejected instead of misparsed by another.
constexpr uint32_t kSgdStateTag = 0x30444753;   // "SGD0"
constexpr uint32_t kAdamStateTag = 0x4D414441;  // "ADAM"
}  // namespace

Status Optimizer::SaveState(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  bio::WriteU32(out, kSgdStateTag);
  if (!out->good()) return Status::IoError("optimizer state write failed");
  return Status::OK();
}

Status Optimizer::LoadState(std::istream* in,
                            const ParameterStore& /*store*/) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  uint32_t tag = 0;
  if (!bio::ReadU32(in, &tag)) {
    return Status::IoError("truncated optimizer state");
  }
  if (tag != kSgdStateTag) {
    return Status::InvalidArgument("optimizer state kind mismatch");
  }
  return Status::OK();
}

Status Adam::SaveState(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  bio::WriteU32(out, kAdamStateTag);
  bio::WriteU64(out, states_.size());
  for (const State& st : states_) {
    bio::WriteU64(out, st.m.rows());
    bio::WriteU64(out, st.m.cols());
    out->write(reinterpret_cast<const char*>(st.m.data()),
               static_cast<std::streamsize>(st.m.size() * sizeof(Scalar)));
    out->write(reinterpret_cast<const char*>(st.v.data()),
               static_cast<std::streamsize>(st.v.size() * sizeof(Scalar)));
    bio::WritePodVector(out, st.row_steps);
  }
  if (!out->good()) return Status::IoError("adam state write failed");
  return Status::OK();
}

Status Adam::LoadState(std::istream* in, const ParameterStore& store) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  uint32_t tag = 0;
  if (!bio::ReadU32(in, &tag)) return Status::IoError("truncated adam state");
  if (tag != kAdamStateTag) {
    return Status::InvalidArgument("optimizer state kind mismatch");
  }
  uint64_t count = 0;
  if (!bio::ReadU64(in, &count)) return Status::IoError("truncated adam state");
  if (count > store.params().size()) {
    return Status::InvalidArgument(
        "adam state has more entries than the store has parameters");
  }
  std::vector<State> restored;
  restored.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const Parameter* p = store.params()[i].get();
    uint64_t rows = 0, cols = 0;
    if (!bio::ReadU64(in, &rows) || !bio::ReadU64(in, &cols)) {
      return Status::IoError("truncated adam state shape");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("adam state shape mismatch for '" +
                                     p->name + "'");
    }
    State st;
    st.m = Tensor(rows, cols);
    st.v = Tensor(rows, cols);
    in->read(reinterpret_cast<char*>(st.m.data()),
             static_cast<std::streamsize>(st.m.size() * sizeof(Scalar)));
    in->read(reinterpret_cast<char*>(st.v.data()),
             static_cast<std::streamsize>(st.v.size() * sizeof(Scalar)));
    if (!in->good()) return Status::IoError("truncated adam moments");
    if (!bio::ReadPodVector(in, &st.row_steps) ||
        st.row_steps.size() != rows) {
      return Status::IoError("truncated adam row steps");
    }
    restored.push_back(std::move(st));
  }
  states_ = std::move(restored);
  return Status::OK();
}

void Sgd::Step(ParameterStore* store, Scalar l2) {
  for (const auto& p : store->params()) {
    if (p->dense_touched) {
      if (l2 > 0.0) p->grad.Axpy(l2, p->value);
      p->value.Axpy(-lr_, p->grad);
    } else {
      for (size_t r : p->touched_rows) {
        for (size_t c = 0; c < p->value.cols(); ++c) {
          Scalar g = p->grad.at(r, c) + l2 * p->value.at(r, c);
          p->value.at(r, c) -= lr_ * g;
        }
      }
    }
  }
  store->ZeroGrads();
}

Adam::State& Adam::StateFor(ParameterStore* store, size_t index) {
  while (states_.size() <= index) {
    const Parameter* p = store->at(states_.size());
    State st;
    st.m = Tensor(p->value.rows(), p->value.cols());
    st.v = Tensor(p->value.rows(), p->value.cols());
    st.row_steps.assign(p->value.rows(), 0);
    states_.push_back(std::move(st));
  }
  return states_[index];
}

void Adam::UpdateRow(Parameter* p, State* st, size_t row) {
  const int64_t t = ++st->row_steps[row];
  const Scalar bc1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(t));
  const Scalar bc2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(t));
  for (size_t c = 0; c < p->value.cols(); ++c) {
    const Scalar g = p->grad.at(row, c);
    Scalar& m = st->m.at(row, c);
    Scalar& v = st->v.at(row, c);
    m = beta1_ * m + (1.0 - beta1_) * g;
    v = beta2_ * v + (1.0 - beta2_) * g * g;
    const Scalar mhat = m / bc1;
    const Scalar vhat = v / bc2;
    p->value.at(row, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void Adam::Step(ParameterStore* store, Scalar l2) {
  for (size_t i = 0; i < store->size(); ++i) {
    Parameter* p = store->at(i);
    State& st = StateFor(store, i);
    if (p->dense_touched) {
      if (l2 > 0.0) p->grad.Axpy(l2, p->value);
      for (size_t r = 0; r < p->value.rows(); ++r) UpdateRow(p, &st, r);
    } else if (!p->touched_rows.empty()) {
      if (l2 > 0.0) {
        for (size_t r : p->touched_rows) {
          for (size_t c = 0; c < p->value.cols(); ++c) {
            p->grad.at(r, c) += l2 * p->value.at(r, c);
          }
        }
      }
      for (size_t r : p->touched_rows) UpdateRow(p, &st, r);
    }
  }
  store->ZeroGrads();
}

}  // namespace kgag
