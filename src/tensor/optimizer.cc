#include "tensor/optimizer.h"

#include <cmath>

namespace kgag {

void Sgd::Step(ParameterStore* store, Scalar l2) {
  for (const auto& p : store->params()) {
    if (p->dense_touched) {
      if (l2 > 0.0) p->grad.Axpy(l2, p->value);
      p->value.Axpy(-lr_, p->grad);
    } else {
      for (size_t r : p->touched_rows) {
        for (size_t c = 0; c < p->value.cols(); ++c) {
          Scalar g = p->grad.at(r, c) + l2 * p->value.at(r, c);
          p->value.at(r, c) -= lr_ * g;
        }
      }
    }
  }
  store->ZeroGrads();
}

Adam::State& Adam::StateFor(ParameterStore* store, size_t index) {
  while (states_.size() <= index) {
    const Parameter* p = store->at(states_.size());
    State st;
    st.m = Tensor(p->value.rows(), p->value.cols());
    st.v = Tensor(p->value.rows(), p->value.cols());
    st.row_steps.assign(p->value.rows(), 0);
    states_.push_back(std::move(st));
  }
  return states_[index];
}

void Adam::UpdateRow(Parameter* p, State* st, size_t row) {
  const int64_t t = ++st->row_steps[row];
  const Scalar bc1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(t));
  const Scalar bc2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(t));
  for (size_t c = 0; c < p->value.cols(); ++c) {
    const Scalar g = p->grad.at(row, c);
    Scalar& m = st->m.at(row, c);
    Scalar& v = st->v.at(row, c);
    m = beta1_ * m + (1.0 - beta1_) * g;
    v = beta2_ * v + (1.0 - beta2_) * g * g;
    const Scalar mhat = m / bc1;
    const Scalar vhat = v / bc2;
    p->value.at(row, c) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void Adam::Step(ParameterStore* store, Scalar l2) {
  for (size_t i = 0; i < store->size(); ++i) {
    Parameter* p = store->at(i);
    State& st = StateFor(store, i);
    if (p->dense_touched) {
      if (l2 > 0.0) p->grad.Axpy(l2, p->value);
      for (size_t r = 0; r < p->value.rows(); ++r) UpdateRow(p, &st, r);
    } else if (!p->touched_rows.empty()) {
      if (l2 > 0.0) {
        for (size_t r : p->touched_rows) {
          for (size_t c = 0; c < p->value.cols(); ++c) {
            p->grad.at(r, c) += l2 * p->value.at(r, c);
          }
        }
      }
      for (size_t r : p->touched_rows) UpdateRow(p, &st, r);
    }
  }
  store->ZeroGrads();
}

}  // namespace kgag
