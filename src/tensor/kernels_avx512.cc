// AVX-512 build of the gemm_simd.inc row engine (compiled with
// -mavx512f -mavx512vl -mavx512dq -mfma; see src/tensor/CMakeLists.txt).
// Selected at runtime by kernels.cc only when the CPU reports avx512f.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "tensor/kernels.h"

namespace kgag {
namespace kernels {
namespace {

using VecD = __m512d;
constexpr size_t kLanes = 8;
inline VecD VecLoad(const Scalar* p) { return _mm512_loadu_pd(p); }
inline VecD VecSplat(Scalar s) { return _mm512_set1_pd(s); }
inline void VecStore(Scalar* p, VecD v) { _mm512_storeu_pd(p, v); }
inline Scalar VecSum(VecD v) {
  const __m256d quad = _mm256_add_pd(_mm512_castpd512_pd256(v),
                                     _mm512_extractf64x4_pd(v, 1));
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(quad),
                                  _mm256_extractf128_pd(quad, 1));
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

// gcc 12 flags the _mm256_undefined_pd() placeholder inside the 512→256
// extract intrinsics as maybe-uninitialized once VecSum inlines into the
// kernels; the lanes are fully written, so scope the false positive out.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include "tensor/gemm_simd.inc"
#pragma GCC diagnostic pop

}  // namespace

void GemmRowsAvx512(bool trans_a, bool trans_b, size_t i_begin, size_t i_end,
                    size_t n, size_t k, const Scalar* a, size_t lda,
                    const Scalar* b, size_t ldb, Scalar* c, size_t ldc) {
  GemmRowsEntry(trans_a, trans_b, i_begin, i_end, n, k, a, lda, b, ldb, c,
                ldc);
}

}  // namespace kernels
}  // namespace kgag
