// AVX2 (+FMA, F16C) tier of the quantized scoring kernels. Compiled with
// -mavx2 -mfma -mf16c (see src/tensor/CMakeLists.txt) and only called
// after the matching __builtin_cpu_supports checks in kernels_quant.cc.
//
// Bit-identity with the scalar reference:
//   - int8: integer accumulation is exact, any summation order gives the
//     same int32; the double expression per block matches the reference
//     verbatim.
//   - fp16/fp32: conversions to double are exact widenings (vcvtph2ps /
//     vcvtps2pd agree with the scalar converters bit-for-bit), the main
//     loop holds lanes 0-3 and 4-7 in two fused-multiply-add accumulators
//     (element p mod 8 -> lane p mod 8, same as the scalar stride-8 loop),
//     the ragged tail runs the shared scalar code, and the final reduction
//     mirrors ReduceLanes8's tree exactly.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace kgag {
namespace kernels {
namespace {

#include "tensor/qgemm_lanes.inc"

/// int32 dot of two int8 vectors: widen 16 codes at a time to int16,
/// multiply-add pairs into int32 (exact; |a·b| ≤ 127² so the int16
/// products and their pairwise sums cannot overflow int32 over any
/// realistic k).
inline int32_t DotInt8(size_t len, const int8_t* x, const int8_t* y) {
  __m256i acc = _mm256_setzero_si256();
  size_t p = 0;
  for (; p + 16 <= len; p += 16) {
    const __m256i xv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + p)));
    const __m256i yv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t sum = 0;
  for (int j = 0; j < 8; ++j) sum += lanes[j];
  for (; p < len; ++p) {
    sum += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
  }
  return sum;
}

/// Lane-discipline dot over pre-converted doubles: acc0 = lanes 0-3,
/// acc1 = lanes 4-7, fused multiply-adds, shared scalar tail, then the
/// extract/add sequence that reproduces ReduceLanes8's tree.
inline double DotLanes8(size_t k, const double* x, const double* y) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p), _mm256_loadu_pd(y + p),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + p + 4),
                           _mm256_loadu_pd(y + p + 4), acc1);
  }
  alignas(32) double l[8];
  _mm256_store_pd(l, acc0);
  _mm256_store_pd(l + 4, acc1);
  FmaTail(p, k, x, y, l);
  return ReduceLanes8(l);
}

inline void ConvertHalfRow(const uint16_t* in, size_t k, double* out) {
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    const __m256 f = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + p)));
    _mm256_storeu_pd(out + p, _mm256_cvtps_pd(_mm256_castps256_ps128(f)));
    _mm256_storeu_pd(out + p + 4,
                     _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)));
  }
  for (; p < k; ++p) out[p] = static_cast<double>(HalfToFloat(in[p]));
}

inline void ConvertFloatRow(const float* in, size_t k, double* out) {
  size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    _mm256_storeu_pd(out + p, _mm256_cvtps_pd(_mm_loadu_ps(in + p)));
  }
  for (; p < k; ++p) out[p] = static_cast<double>(in[p]);
}

template <typename T, void (*Convert)(const T*, size_t, double*)>
void QGemmConvert(size_t m, size_t n, size_t k, const T* a, const T* b,
                  double* c, size_t ldc) {
  std::vector<double> abuf(m * k);
  for (size_t i = 0; i < m; ++i) Convert(a + i * k, k, &abuf[i * k]);
  std::vector<double> brow(k);
  for (size_t j = 0; j < n; ++j) {
    Convert(b + j * k, k, brow.data());
    for (size_t i = 0; i < m; ++i) {
      c[i * ldc + j] = DotLanes8(k, &abuf[i * k], brow.data());
    }
  }
}

}  // namespace

namespace {

/// Per-row-scale (block == 0) fast path: 4-row A tile widened to int16
/// once, B widened once per item row and shared across the tile, and the
/// 4 horizontal reductions collapsed into one hadd tree. Exact-int32
/// accumulation makes the reordering bit-identical to the reference (see
/// the AVX-512 tier for the full argument).
void QGemmInt8RowScaleAvx2(size_t m, size_t n, size_t k, const int8_t* a,
                           const float* a_scales, const int8_t* b,
                           const float* b_scales, double* c, size_t ldc) {
  const size_t kv = k & ~size_t{15};  // vectorized prefix, 16 codes/step
  std::vector<int16_t> a16(4 * kv);
  for (size_t i0 = 0; i0 < m; i0 += 4) {
    const size_t it = std::min<size_t>(4, m - i0);
    for (size_t r = 0; r < it; ++r) {
      const int8_t* arow = a + (i0 + r) * k;
      for (size_t p = 0; p < kv; p += 16) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a16.data() + r * kv + p),
            _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(arow + p))));
      }
    }
    alignas(32) double asc4[4] = {0, 0, 0, 0};
    for (size_t r = 0; r < it; ++r) {
      asc4[r] = static_cast<double>(a_scales[i0 + r]);
    }
    const __m256d ascv = _mm256_load_pd(asc4);
    for (size_t j = 0; j < n; ++j) {
      const int8_t* brow = b + j * k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (size_t p = 0; p < kv; p += 16) {
        const __m256i bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(brow + p)));
        const int16_t* ap = a16.data() + p;
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(ap)), bv));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(ap + kv)), bv));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(_mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(ap + 2 * kv)), bv));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(_mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(ap + 3 * kv)), bv));
      }
      const __m128i f0 = _mm_add_epi32(_mm256_castsi256_si128(acc0),
                                       _mm256_extracti128_si256(acc0, 1));
      const __m128i f1 = _mm_add_epi32(_mm256_castsi256_si128(acc1),
                                       _mm256_extracti128_si256(acc1, 1));
      const __m128i f2 = _mm_add_epi32(_mm256_castsi256_si128(acc2),
                                       _mm256_extracti128_si256(acc2, 1));
      const __m128i f3 = _mm_add_epi32(_mm256_castsi256_si128(acc3),
                                       _mm256_extracti128_si256(acc3, 1));
      __m128i s = _mm_hadd_epi32(_mm_hadd_epi32(f0, f1),
                                 _mm_hadd_epi32(f2, f3));
      if (kv < k) {  // ragged k tail, exact int32 adds
        alignas(16) int32_t st[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(st), s);
        for (size_t r = 0; r < it; ++r) {
          const int8_t* arow = a + (i0 + r) * k;
          for (size_t p = kv; p < k; ++p) {
            st[r] += static_cast<int32_t>(arow[p]) *
                     static_cast<int32_t>(brow[p]);
          }
        }
        s = _mm_load_si128(reinterpret_cast<const __m128i*>(st));
      }
      const __m256d scale = _mm256_mul_pd(
          ascv, _mm256_set1_pd(static_cast<double>(b_scales[j])));
      alignas(32) double outs[4];
      _mm256_store_pd(outs, _mm256_mul_pd(_mm256_cvtepi32_pd(s), scale));
      for (size_t r = 0; r < it; ++r) c[(i0 + r) * ldc + j] = outs[r];
    }
  }
}

}  // namespace

void QGemmInt8Avx2(size_t m, size_t n, size_t k, uint32_t block,
                   const int8_t* a, const float* a_scales, const int8_t* b,
                   const float* b_scales, double* c, size_t ldc) {
  if (block == 0) {
    QGemmInt8RowScaleAvx2(m, n, k, a, a_scales, b, b_scales, c, ldc);
    return;
  }
  const size_t bs = block;
  const size_t spr = (k + block - 1) / block;
  for (size_t j = 0; j < n; ++j) {
    const int8_t* brow = b + j * k;
    const float* bsc = b_scales + j * spr;
    for (size_t i = 0; i < m; ++i) {
      const int8_t* arow = a + i * k;
      const float* asc = a_scales + i * spr;
      double sum = 0.0;
      for (size_t blk = 0, p0 = 0; p0 < k; ++blk, p0 += bs) {
        const size_t p1 = std::min(k, p0 + bs);
        const int32_t acc = DotInt8(p1 - p0, arow + p0, brow + p0);
        sum += static_cast<double>(acc) * (static_cast<double>(asc[blk]) *
                                           static_cast<double>(bsc[blk]));
      }
      c[i * ldc + j] = sum;
    }
  }
}

void QGemmFp16Avx2(size_t m, size_t n, size_t k, const uint16_t* a,
                   const uint16_t* b, double* c, size_t ldc) {
  QGemmConvert<uint16_t, &ConvertHalfRow>(m, n, k, a, b, c, ldc);
}

void QGemmFp32Avx2(size_t m, size_t n, size_t k, const float* a,
                   const float* b, double* c, size_t ldc) {
  QGemmConvert<float, &ConvertFloatRow>(m, n, k, a, b, c, ldc);
}

namespace {

/// 4-lane FastExp mirroring the scalar DAG in kernels.h, unfused mul/add
/// (-ffp-contract=off on this file). See the AVX-512 tier for the
/// bits(shifted) - bits(kShifter) derivation of 2^n.
inline __m256d FastExp4(__m256d x) {
  x = _mm256_max_pd(x, _mm256_set1_pd(-708.0));
  x = _mm256_min_pd(x, _mm256_set1_pd(709.0));
  const __m256d shifter = _mm256_set1_pd(6755399441055744.0);  // 1.5*2^52
  const __m256d shifted = _mm256_add_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(1.4426950408889634074)), shifter);
  const __m256d n = _mm256_sub_pd(shifted, shifter);
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x,
                    _mm256_mul_pd(n, _mm256_set1_pd(6.93145751953125e-01))),
      _mm256_mul_pd(n, _mm256_set1_pd(1.42860682030941723212e-06)));
  __m256d p = _mm256_set1_pd(1.0 / 39916800.0);
  const double kC[] = {1.0 / 3628800.0, 1.0 / 362880.0, 1.0 / 40320.0,
                       1.0 / 5040.0,    1.0 / 720.0,    1.0 / 120.0,
                       1.0 / 24.0,      1.0 / 6.0,      0.5,
                       1.0,             1.0};
  for (double c : kC) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(c));
  }
  const __m256i nbits = _mm256_sub_epi64(_mm256_castpd_si256(shifted),
                                         _mm256_castpd_si256(shifter));
  const __m256i ebits = _mm256_slli_epi64(
      _mm256_add_epi64(nbits, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(ebits));
}

}  // namespace

void SoftmaxScoreReduceAvx2(size_t l, size_t n, bool use_sp,
                            const double* sp, size_t ld, const double* pi,
                            double* out) {
  // Four candidates per iteration, lanes running the scalar reference's
  // per-item DAG; scalar tail for the ragged end.
  std::vector<double> buf(2 * l * 4);
  double* ab = buf.data();
  double* eb = buf.data() + l * 4;
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    __m256d mx = _mm256_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m256d s =
          use_sp ? _mm256_loadu_pd(sp + i * ld + p) : _mm256_setzero_pd();
      const __m256d a = _mm256_add_pd(s, _mm256_set1_pd(pi[i]));
      _mm256_storeu_pd(ab + i * 4, a);
      mx = i == 0 ? a : _mm256_max_pd(mx, a);
    }
    __m256d sum = _mm256_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m256d e =
          FastExp4(_mm256_sub_pd(_mm256_loadu_pd(ab + i * 4), mx));
      _mm256_storeu_pd(eb + i * 4, e);
      sum = _mm256_add_pd(sum, e);
    }
    const __m256d inv = _mm256_div_pd(_mm256_set1_pd(1.0), sum);
    __m256d score = _mm256_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m256d w = _mm256_mul_pd(_mm256_loadu_pd(eb + i * 4), inv);
      score = _mm256_add_pd(
          score, _mm256_mul_pd(w, _mm256_loadu_pd(sp + i * ld + p)));
    }
    _mm256_storeu_pd(out + p, score);
  }
  for (; p < n; ++p) {
    for (size_t i = 0; i < l; ++i) {
      ab[i] = (use_sp ? sp[i * ld + p] : 0.0) + pi[i];
    }
    double mx = ab[0];
    for (size_t i = 1; i < l; ++i) mx = std::max(mx, ab[i]);
    double sum = 0.0;
    for (size_t i = 0; i < l; ++i) {
      ab[i] = FastExp(ab[i] - mx);
      sum += ab[i];
    }
    const double inv = 1.0 / sum;
    double score = 0.0;
    for (size_t i = 0; i < l; ++i) {
      score += (ab[i] * inv) * sp[i * ld + p];
    }
    out[p] = score;
  }
}

}  // namespace kernels
}  // namespace kgag
