#include "tensor/tape.h"

#include <cmath>
#include <cstring>

#include "tensor/kernels.h"

namespace kgag {

namespace {

Scalar StableSoftplus(Scalar x) {
  // log(1+e^x) = max(x,0) + log1p(exp(-|x|))
  return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
}

Scalar StableSigmoid(Scalar x) {
  if (x >= 0) {
    const Scalar z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const Scalar z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace

Var Tape::Emplace(Tensor value, bool requires_grad, BackwardFn backward) {
  // Aggregate init move-constructs the tensors, so an arena-backed value
  // carries its buffer (and resource) into the node; the grad starts
  // empty but bound to the tape's resource so its later allocation also
  // lands on the arena.
  nodes_.push_back(
      Node{std::move(value), Tensor(node_resource()), backward, requires_grad});
  return Var{static_cast<int32_t>(nodes_.size() - 1)};
}

Tape::Node& Tape::node(Var v) {
  KGAG_DCHECK(v.valid() && static_cast<size_t>(v.id) < nodes_.size());
  return nodes_[static_cast<size_t>(v.id)];
}

const Tape::Node& Tape::node(Var v) const {
  KGAG_DCHECK(v.valid() && static_cast<size_t>(v.id) < nodes_.size());
  return nodes_[static_cast<size_t>(v.id)];
}

void Tape::AccumulateGrad(Var v, const Tensor& g) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  if (n.grad.empty()) {
    n.grad.ResetShape(n.value.rows(), n.value.cols());
  }
  n.grad.Add(g);
}

Tensor Tape::CloneTensor(const Tensor& src) {
  Tensor out(src.rows(), src.cols(), node_resource());
  std::memcpy(out.data(), src.data(), src.size() * sizeof(Scalar));
  return out;
}

std::span<const size_t> Tape::ArenaCopy(std::span<const size_t> v) {
  auto* p = static_cast<size_t*>(
      arena_.allocate(v.size() * sizeof(size_t), alignof(size_t)));
  std::memcpy(p, v.data(), v.size() * sizeof(size_t));
  return {p, v.size()};
}

std::span<const Var> Tape::ArenaCopy(std::span<const Var> v) {
  auto* p = static_cast<Var*>(
      arena_.allocate(v.size() * sizeof(Var), alignof(Var)));
  std::memcpy(p, v.data(), v.size() * sizeof(Var));
  return {p, v.size()};
}

const Tensor& Tape::value(Var v) const { return node(v).value; }

const Tensor& Tape::grad(Var v) const {
  const Node& n = node(v);
  KGAG_CHECK(!n.grad.empty()) << "grad not computed for node " << v.id;
  return n.grad;
}

void Tape::Clear() {
  // Destroy nodes (and their arena-bound tensors) before rewinding the
  // arena they point into; node-vector capacity survives.
  nodes_.clear();
  arena_.Reset();
}

// ---- Leaves ---------------------------------------------------------------

Var Tape::Leaf(Parameter* p) {
  KGAG_CHECK(p != nullptr);
  return Emplace(CloneTensor(p->value), /*requires_grad=*/true,
                 [p](Tape* t, const Tensor& g) { t->sink_->AddDense(p, g); });
}

Var Tape::Gather(Parameter* table, std::span<const size_t> rows) {
  KGAG_CHECK(table != nullptr);
  const size_t d = table->value.cols();
  std::span<const size_t> stable = ArenaCopy(rows);
  Tensor out = NewTensor(stable.size(), d);
  for (size_t i = 0; i < stable.size(); ++i) {
    KGAG_CHECK_LT(stable[i], table->value.rows())
        << "gather row out of range in " << table->name;
    std::memcpy(out.data() + i * d, table->value.data() + stable[i] * d,
                d * sizeof(Scalar));
  }
  const size_t* rp = stable.data();
  const size_t rn = stable.size();
  return Emplace(std::move(out), /*requires_grad=*/true,
                 [table, rp, rn](Tape* t, const Tensor& g) {
                   t->sink_->AddRows(table, {rp, rn}, g);
                 });
}

Var Tape::Gather(Parameter* table, std::span<const int32_t> rows) {
  KGAG_CHECK(table != nullptr);
  // Widen straight onto the arena; no size_t vector at the call site.
  auto* p = static_cast<size_t*>(
      arena_.allocate(rows.size() * sizeof(size_t), alignof(size_t)));
  for (size_t i = 0; i < rows.size(); ++i) {
    KGAG_CHECK_GE(rows[i], 0) << "negative gather row in " << table->name;
    p[i] = static_cast<size_t>(rows[i]);
  }
  const size_t d = table->value.cols();
  Tensor out = NewTensor(rows.size(), d);
  for (size_t i = 0; i < rows.size(); ++i) {
    KGAG_CHECK_LT(p[i], table->value.rows())
        << "gather row out of range in " << table->name;
    std::memcpy(out.data() + i * d, table->value.data() + p[i] * d,
                d * sizeof(Scalar));
  }
  const size_t rn = rows.size();
  const size_t* rp = p;
  return Emplace(std::move(out), /*requires_grad=*/true,
                 [table, rp, rn](Tape* t, const Tensor& g) {
                   t->sink_->AddRows(table, {rp, rn}, g);
                 });
}

Var Tape::Constant(Tensor t) {
  return Emplace(std::move(t), /*requires_grad=*/false, nullptr);
}

// ---- Elementwise / shape ----------------------------------------------------

Var Tape::Add(Var a, Var b) {
  KGAG_CHECK(value(a).same_shape(value(b))) << "Add shape mismatch";
  Tensor out = CloneTensor(value(a));
  out.Add(value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  return Emplace(std::move(out), rg, [a, b](Tape* t, const Tensor& g) {
    t->AccumulateGrad(a, g);
    t->AccumulateGrad(b, g);
  });
}

Var Tape::Sub(Var a, Var b) {
  KGAG_CHECK(value(a).same_shape(value(b))) << "Sub shape mismatch";
  Tensor out = CloneTensor(value(a));
  out.Axpy(-1.0, value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  return Emplace(std::move(out), rg, [a, b](Tape* t, const Tensor& g) {
    t->AccumulateGrad(a, g);
    Tensor neg = t->CloneTensor(g);
    neg.Scale(-1.0);
    t->AccumulateGrad(b, neg);
  });
}

Var Tape::Mul(Var a, Var b) {
  KGAG_CHECK(value(a).same_shape(value(b))) << "Mul shape mismatch";
  Tensor out = CloneTensor(value(a));
  out.Mul(value(b));
  bool rg = node(a).requires_grad || node(b).requires_grad;
  return Emplace(std::move(out), rg, [a, b](Tape* t, const Tensor& g) {
    Tensor ga = t->CloneTensor(g);
    ga.Mul(t->value(b));
    t->AccumulateGrad(a, ga);
    Tensor gb = t->CloneTensor(g);
    gb.Mul(t->value(a));
    t->AccumulateGrad(b, gb);
  });
}

Var Tape::ScalarMul(Var a, Scalar s) {
  Tensor out = CloneTensor(value(a));
  out.Scale(s);
  return Emplace(std::move(out), node(a).requires_grad,
                 [a, s](Tape* t, const Tensor& g) {
                   Tensor ga = t->CloneTensor(g);
                   ga.Scale(s);
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::AddScalar(Var a, Scalar s) {
  Tensor out = CloneTensor(value(a));
  out.Apply([s](Scalar x) { return x + s; });
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) { t->AccumulateGrad(a, g); });
}

Var Tape::MatMul(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  KGAG_CHECK_EQ(av.cols(), bv.rows()) << "MatMul inner dim";
  Tensor out = NewTensor(av.rows(), bv.cols());
  kernels::Gemm(false, false, av.rows(), bv.cols(), av.cols(), av.data(),
                av.cols(), bv.data(), bv.cols(), out.data(), out.cols());
  bool rg = node(a).requires_grad || node(b).requires_grad;
  return Emplace(std::move(out), rg, [a, b](Tape* t, const Tensor& g) {
    // dA = g Bᵀ ; dB = Aᵀ g
    const Tensor& av2 = t->value(a);
    const Tensor& bv2 = t->value(b);
    Tensor ga = t->NewTensor(g.rows(), bv2.rows());
    kernels::Gemm(false, true, g.rows(), bv2.rows(), g.cols(), g.data(),
                  g.cols(), bv2.data(), bv2.cols(), ga.data(), ga.cols());
    t->AccumulateGrad(a, ga);
    Tensor gb = t->NewTensor(av2.cols(), g.cols());
    kernels::Gemm(true, false, av2.cols(), g.cols(), av2.rows(), av2.data(),
                  av2.cols(), g.data(), g.cols(), gb.data(), gb.cols());
    t->AccumulateGrad(b, gb);
  });
}

Var Tape::Transpose(Var a) {
  const Tensor& av = value(a);
  Tensor out = NewTensor(av.cols(), av.rows());
  for (size_t r = 0; r < av.rows(); ++r) {
    for (size_t c = 0; c < av.cols(); ++c) out.at(c, r) = av.at(r, c);
  }
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   Tensor ga = t->NewTensor(g.cols(), g.rows());
                   for (size_t r = 0; r < g.rows(); ++r) {
                     for (size_t c = 0; c < g.cols(); ++c) {
                       ga.at(c, r) = g.at(r, c);
                     }
                   }
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::ConcatCols(std::span<const Var> parts) {
  KGAG_CHECK(!parts.empty()) << "ConcatCols of nothing";
  const size_t rows = value(parts[0]).rows();
  size_t total_cols = 0;
  bool rg = false;
  for (Var p : parts) {
    KGAG_CHECK_EQ(value(p).rows(), rows) << "ConcatCols row mismatch";
    total_cols += value(p).cols();
    rg = rg || node(p).requires_grad;
  }
  Tensor out = NewTensor(rows, total_cols);
  size_t off = 0;
  for (Var p : parts) {
    const Tensor& v = value(p);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < v.cols(); ++c) out.at(r, off + c) = v.at(r, c);
    }
    off += v.cols();
  }
  std::span<const Var> stable = ArenaCopy(parts);
  const Var* pp = stable.data();
  const size_t pn = stable.size();
  return Emplace(std::move(out), rg, [pp, pn](Tape* t, const Tensor& g) {
    size_t off2 = 0;
    for (size_t k = 0; k < pn; ++k) {
      const Var p = pp[k];
      const Tensor& v = t->value(p);
      Tensor slice = t->NewTensor(v.rows(), v.cols());
      for (size_t r = 0; r < v.rows(); ++r) {
        for (size_t c = 0; c < v.cols(); ++c) {
          slice.at(r, c) = g.at(r, off2 + c);
        }
      }
      t->AccumulateGrad(p, slice);
      off2 += v.cols();
    }
  });
}

Var Tape::ConcatRows(std::span<const Var> parts) {
  KGAG_CHECK(!parts.empty()) << "ConcatRows of nothing";
  const size_t cols = value(parts[0]).cols();
  size_t total_rows = 0;
  bool rg = false;
  for (Var p : parts) {
    KGAG_CHECK_EQ(value(p).cols(), cols) << "ConcatRows col mismatch";
    total_rows += value(p).rows();
    rg = rg || node(p).requires_grad;
  }
  Tensor out = NewTensor(total_rows, cols);
  size_t off = 0;
  for (Var p : parts) {
    const Tensor& v = value(p);
    for (size_t r = 0; r < v.rows(); ++r) {
      for (size_t c = 0; c < cols; ++c) out.at(off + r, c) = v.at(r, c);
    }
    off += v.rows();
  }
  std::span<const Var> stable = ArenaCopy(parts);
  const Var* pp = stable.data();
  const size_t pn = stable.size();
  return Emplace(std::move(out), rg, [pp, pn](Tape* t, const Tensor& g) {
    size_t off2 = 0;
    for (size_t k = 0; k < pn; ++k) {
      const Var p = pp[k];
      const Tensor& v = t->value(p);
      Tensor slice = t->NewTensor(v.rows(), v.cols());
      for (size_t r = 0; r < v.rows(); ++r) {
        for (size_t c = 0; c < v.cols(); ++c) {
          slice.at(r, c) = g.at(off2 + r, c);
        }
      }
      t->AccumulateGrad(p, slice);
      off2 += v.rows();
    }
  });
}

Var Tape::SliceRow(Var a, size_t r) {
  KGAG_CHECK_LT(r, value(a).rows());
  const Tensor& av = value(a);
  Tensor out = NewTensor(1, av.cols());
  std::memcpy(out.data(), av.data() + r * av.cols(),
              av.cols() * sizeof(Scalar));
  return Emplace(std::move(out), node(a).requires_grad,
                 [a, r](Tape* t, const Tensor& g) {
                   Tensor full =
                       t->NewTensor(t->value(a).rows(), t->value(a).cols());
                   full.AddToRow(r, g);
                   t->AccumulateGrad(a, full);
                 });
}

Var Tape::AddRowBroadcast(Var a, Var row) {
  const Tensor& av = value(a);
  const Tensor& rv = value(row);
  KGAG_CHECK(rv.rows() == 1 && rv.cols() == av.cols())
      << "AddRowBroadcast shape";
  Tensor out = CloneTensor(av);
  for (size_t r = 0; r < av.rows(); ++r) out.AddToRow(r, rv);
  bool rg = node(a).requires_grad || node(row).requires_grad;
  return Emplace(std::move(out), rg, [a, row](Tape* t, const Tensor& g) {
    t->AccumulateGrad(a, g);
    Tensor rsum = t->NewTensor(1, g.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      for (size_t c = 0; c < g.cols(); ++c) rsum.at(0, c) += g.at(r, c);
    }
    t->AccumulateGrad(row, rsum);
  });
}

Var Tape::Reshape(Var a, size_t rows, size_t cols) {
  const Tensor& av = value(a);
  KGAG_CHECK_EQ(av.size(), rows * cols) << "Reshape size mismatch";
  Tensor out = NewTensor(rows, cols);
  std::memcpy(out.data(), av.data(), av.size() * sizeof(Scalar));
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& av2 = t->value(a);
                   Tensor ga = t->NewTensor(av2.rows(), av2.cols());
                   std::memcpy(ga.data(), g.data(), g.size() * sizeof(Scalar));
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::RepeatRows(Var row, size_t n) {
  const Tensor& rv = value(row);
  KGAG_CHECK_EQ(rv.rows(), 1u) << "RepeatRows expects a 1xd row";
  Tensor out = NewTensor(n, rv.cols());
  for (size_t r = 0; r < n; ++r) out.SetRow(r, rv);
  return Emplace(std::move(out), node(row).requires_grad,
                 [row](Tape* t, const Tensor& g) {
                   Tensor rsum = t->NewTensor(1, g.cols());
                   for (size_t r = 0; r < g.rows(); ++r) {
                     for (size_t c = 0; c < g.cols(); ++c) {
                       rsum.at(0, c) += g.at(r, c);
                     }
                   }
                   t->AccumulateGrad(row, rsum);
                 });
}

Var Tape::SegmentWeightedSumRows(Var weights, Var values) {
  const Tensor& w = value(weights);
  const Tensor& v = value(values);
  const size_t n = w.rows();
  const size_t k = w.cols();
  KGAG_CHECK_EQ(v.rows(), n * k) << "SegmentWeightedSumRows shape";
  Tensor out = NewTensor(n, v.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      const Scalar wij = w.at(i, j);
      const size_t vr = i * k + j;
      for (size_t c = 0; c < v.cols(); ++c) {
        out.at(i, c) += wij * v.at(vr, c);
      }
    }
  }
  bool rg = node(weights).requires_grad || node(values).requires_grad;
  return Emplace(std::move(out), rg,
                 [weights, values](Tape* t, const Tensor& g) {
                   const Tensor& w2 = t->value(weights);
                   const Tensor& v2 = t->value(values);
                   const size_t n2 = w2.rows();
                   const size_t k2 = w2.cols();
                   Tensor gw = t->NewTensor(n2, k2);
                   Tensor gv = t->NewTensor(v2.rows(), v2.cols());
                   for (size_t i = 0; i < n2; ++i) {
                     for (size_t j = 0; j < k2; ++j) {
                       const size_t vr = i * k2 + j;
                       Scalar s = 0.0;
                       for (size_t c = 0; c < v2.cols(); ++c) {
                         s += g.at(i, c) * v2.at(vr, c);
                         gv.at(vr, c) += w2.at(i, j) * g.at(i, c);
                       }
                       gw.at(i, j) = s;
                     }
                   }
                   t->AccumulateGrad(weights, gw);
                   t->AccumulateGrad(values, gv);
                 });
}

// ---- Nonlinearities ---------------------------------------------------------

Var Tape::Relu(Var a) {
  Tensor out = CloneTensor(value(a));
  out.Apply([](Scalar x) { return x > 0 ? x : 0.0; });
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& x = t->value(a);
                   Tensor ga = t->CloneTensor(g);
                   for (size_t i = 0; i < ga.size(); ++i) {
                     if (x[i] <= 0) ga[i] = 0.0;
                   }
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::Sigmoid(Var a) {
  Tensor out = CloneTensor(value(a));
  out.Apply(StableSigmoid);
  Var v = Emplace(std::move(out), node(a).requires_grad, nullptr);
  node(v).backward = [a, v](Tape* t, const Tensor& g) {
    const Tensor& y = t->value(v);
    Tensor ga = t->CloneTensor(g);
    for (size_t i = 0; i < ga.size(); ++i) ga[i] *= y[i] * (1.0 - y[i]);
    t->AccumulateGrad(a, ga);
  };
  return v;
}

Var Tape::Tanh(Var a) {
  Tensor out = CloneTensor(value(a));
  out.Apply([](Scalar x) { return std::tanh(x); });
  Var v = Emplace(std::move(out), node(a).requires_grad, nullptr);
  node(v).backward = [a, v](Tape* t, const Tensor& g) {
    const Tensor& y = t->value(v);
    Tensor ga = t->CloneTensor(g);
    for (size_t i = 0; i < ga.size(); ++i) ga[i] *= 1.0 - y[i] * y[i];
    t->AccumulateGrad(a, ga);
  };
  return v;
}

Var Tape::Softplus(Var a) {
  Tensor out = CloneTensor(value(a));
  out.Apply(StableSoftplus);
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& x = t->value(a);
                   Tensor ga = t->CloneTensor(g);
                   for (size_t i = 0; i < ga.size(); ++i) {
                     ga[i] *= StableSigmoid(x[i]);
                   }
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::Log(Var a) {
  Tensor out = CloneTensor(value(a));
  out.Apply([](Scalar x) { return std::log(x); });
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& x = t->value(a);
                   Tensor ga = t->CloneTensor(g);
                   for (size_t i = 0; i < ga.size(); ++i) ga[i] /= x[i];
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::SoftmaxRows(Var a) {
  const Tensor& x = value(a);
  Tensor out = NewTensor(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    Scalar mx = -1e300;
    for (size_t c = 0; c < x.cols(); ++c) mx = std::max(mx, x.at(r, c));
    Scalar sum = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = std::exp(x.at(r, c) - mx);
      sum += out.at(r, c);
    }
    for (size_t c = 0; c < x.cols(); ++c) out.at(r, c) /= sum;
  }
  Var v = Emplace(std::move(out), node(a).requires_grad, nullptr);
  node(v).backward = [a, v](Tape* t, const Tensor& g) {
    const Tensor& y = t->value(v);
    Tensor ga = t->NewTensor(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      Scalar dot = 0.0;
      for (size_t c = 0; c < y.cols(); ++c) dot += g.at(r, c) * y.at(r, c);
      for (size_t c = 0; c < y.cols(); ++c) {
        ga.at(r, c) = y.at(r, c) * (g.at(r, c) - dot);
      }
    }
    t->AccumulateGrad(a, ga);
  };
  return v;
}

// ---- Reductions --------------------------------------------------------------

Var Tape::SumRows(Var a) {
  const Tensor& x = value(a);
  Tensor out = NewTensor(1, x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) out.at(0, c) += x.at(r, c);
  }
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& x2 = t->value(a);
                   Tensor ga = t->NewTensor(x2.rows(), x2.cols());
                   for (size_t r = 0; r < x2.rows(); ++r) ga.AddToRow(r, g);
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::MeanRows(Var a) {
  const size_t k = value(a).rows();
  KGAG_CHECK_GT(k, 0u);
  return ScalarMul(SumRows(a), 1.0 / static_cast<Scalar>(k));
}

Var Tape::RowDot(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  KGAG_CHECK(av.same_shape(bv)) << "RowDot shape mismatch";
  Tensor out = NewTensor(av.rows(), 1);
  for (size_t r = 0; r < av.rows(); ++r) {
    Scalar s = 0.0;
    for (size_t c = 0; c < av.cols(); ++c) s += av.at(r, c) * bv.at(r, c);
    out.at(r, 0) = s;
  }
  bool rg = node(a).requires_grad || node(b).requires_grad;
  return Emplace(std::move(out), rg, [a, b](Tape* t, const Tensor& g) {
    const Tensor& av2 = t->value(a);
    const Tensor& bv2 = t->value(b);
    Tensor ga = t->NewTensor(av2.rows(), av2.cols());
    Tensor gb = t->NewTensor(bv2.rows(), bv2.cols());
    for (size_t r = 0; r < av2.rows(); ++r) {
      const Scalar gr = g.at(r, 0);
      for (size_t c = 0; c < av2.cols(); ++c) {
        ga.at(r, c) = gr * bv2.at(r, c);
        gb.at(r, c) = gr * av2.at(r, c);
      }
    }
    t->AccumulateGrad(a, ga);
    t->AccumulateGrad(b, gb);
  });
}

Var Tape::Sum(Var a) {
  Tensor out = NewTensor(1, 1);
  out[0] = value(a).Sum();
  return Emplace(std::move(out), node(a).requires_grad,
                 [a](Tape* t, const Tensor& g) {
                   const Tensor& x = t->value(a);
                   Tensor ga = t->NewTensor(x.rows(), x.cols());
                   ga.Fill(g.item());
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::Mean(Var a) {
  const size_t n = value(a).size();
  KGAG_CHECK_GT(n, 0u);
  return ScalarMul(Sum(a), 1.0 / static_cast<Scalar>(n));
}

Var Tape::MinAll(Var a) {
  const Tensor& x = value(a);
  KGAG_CHECK_GT(x.size(), 0u);
  size_t arg = 0;
  for (size_t i = 1; i < x.size(); ++i) {
    if (x[i] < x[arg]) arg = i;
  }
  Tensor out = NewTensor(1, 1);
  out[0] = x[arg];
  return Emplace(std::move(out), node(a).requires_grad,
                 [a, arg](Tape* t, const Tensor& g) {
                   const Tensor& x2 = t->value(a);
                   Tensor ga = t->NewTensor(x2.rows(), x2.cols());
                   ga[arg] = g.item();
                   t->AccumulateGrad(a, ga);
                 });
}

Var Tape::MaxAll(Var a) {
  const Tensor& x = value(a);
  KGAG_CHECK_GT(x.size(), 0u);
  size_t arg = 0;
  for (size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[arg]) arg = i;
  }
  Tensor out = NewTensor(1, 1);
  out[0] = x[arg];
  return Emplace(std::move(out), node(a).requires_grad,
                 [a, arg](Tape* t, const Tensor& g) {
                   const Tensor& x2 = t->value(a);
                   Tensor ga = t->NewTensor(x2.rows(), x2.cols());
                   ga[arg] = g.item();
                   t->AccumulateGrad(a, ga);
                 });
}

// ---- Backward -----------------------------------------------------------------

void Tape::Backward(Var loss) {
  KGAG_CHECK(loss.valid());
  KGAG_CHECK_EQ(value(loss).size(), 1u) << "Backward target must be scalar";
  // Release keeps each grad bound to its resource (and its capacity), so
  // repeated Backward calls on one graph reuse the same storage.
  for (Node& n : nodes_) n.grad.Release();
  Node& seed = node(loss);
  seed.grad.ResetShape(1, 1);
  seed.grad[0] = 1.0;
  for (size_t i = nodes_.size(); i-- > 0;) {
    Node& n = nodes_[i];
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    n.backward(this, n.grad);
  }
}

}  // namespace kgag
