#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/kernels.h"

namespace kgag {

Tensor::Tensor(std::initializer_list<std::initializer_list<Scalar>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    KGAG_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Tensor Tensor::Row(std::initializer_list<Scalar> values) {
  Tensor t(1, values.size());
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::Row(const std::vector<Scalar>& values) {
  Tensor t(1, values.size());
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::Identity(size_t n) {
  Tensor t(n, n);
  for (size_t i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

void Tensor::Add(const Tensor& other) {
  KGAG_CHECK(same_shape(other)) << "Add shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(Scalar alpha, const Tensor& other) {
  KGAG_CHECK(same_shape(other)) << "Axpy shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::Scale(Scalar alpha) {
  for (auto& v : data_) v *= alpha;
}

void Tensor::Mul(const Tensor& other) {
  KGAG_CHECK(same_shape(other)) << "Mul shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

Scalar Tensor::Sum() const {
  Scalar s = 0.0;
  for (Scalar v : data_) s += v;
  return s;
}

Scalar Tensor::SquaredNorm() const {
  Scalar s = 0.0;
  for (Scalar v : data_) s += v * v;
  return s;
}

Scalar Tensor::AbsMax() const {
  Scalar s = 0.0;
  for (Scalar v : data_) s = std::max(s, std::abs(v));
  return s;
}

Tensor Tensor::RowAt(size_t r) const {
  KGAG_CHECK_LT(r, rows_);
  Tensor out(1, cols_);
  std::copy(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_,
            out.data_.begin());
  return out;
}

void Tensor::SetRow(size_t r, const Tensor& row) {
  KGAG_CHECK_LT(r, rows_);
  KGAG_CHECK(row.rows() == 1 && row.cols() == cols_) << "SetRow shape";
  std::copy(row.data_.begin(), row.data_.end(), data_.begin() + r * cols_);
}

void Tensor::AddToRow(size_t r, const Tensor& row) {
  KGAG_CHECK_LT(r, rows_);
  KGAG_CHECK(row.rows() == 1 && row.cols() == cols_) << "AddToRow shape";
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += row.data_[c];
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

std::string Tensor::ToString(int max_elems) const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << ":";
  int shown = 0;
  for (size_t r = 0; r < rows_ && shown < max_elems; ++r) {
    if (r > 0) os << ";";
    for (size_t c = 0; c < cols_ && shown < max_elems; ++c, ++shown) {
      os << " " << at(r, c);
    }
  }
  if (static_cast<size_t>(shown) < size()) os << " ...";
  os << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KGAG_CHECK_EQ(a.cols(), b.rows()) << "MatMul inner dim";
  Tensor out(a.rows(), b.cols());
  kernels::Gemm(false, false, a.rows(), b.cols(), a.cols(), a.data(),
                a.cols(), b.data(), b.cols(), out.data(), out.cols());
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  KGAG_CHECK_EQ(a.rows(), b.rows()) << "MatMulTransA inner dim";
  Tensor out(a.cols(), b.cols());
  kernels::Gemm(true, false, a.cols(), b.cols(), a.rows(), a.data(), a.cols(),
                b.data(), b.cols(), out.data(), out.cols());
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  KGAG_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransB inner dim";
  Tensor out(a.rows(), b.rows());
  kernels::Gemm(false, true, a.rows(), b.rows(), a.cols(), a.data(), a.cols(),
                b.data(), b.cols(), out.data(), out.cols());
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Add(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.Axpy(-1.0, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  KGAG_CHECK(a.same_shape(b)) << "Mul shape mismatch";
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Scalar Dot(const Tensor& a, const Tensor& b) {
  KGAG_CHECK_EQ(a.size(), b.size()) << "Dot size mismatch";
  Scalar s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

bool AllClose(const Tensor& a, const Tensor& b, Scalar rtol, Scalar atol) {
  if (!a.same_shape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

}  // namespace kgag
