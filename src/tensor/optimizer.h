// First-order optimizers over a ParameterStore. Adam is the paper's choice
// (§III-E); SGD is kept for tests and ablations. Both honour the sparse
// touch tracking on embedding tables: untouched rows are skipped, matching
// the "lazy" Adam variant common in recommender training.
#ifndef KGAG_TENSOR_OPTIMIZER_H_
#define KGAG_TENSOR_OPTIMIZER_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/status.h"
#include "tensor/parameter.h"

namespace kgag {

/// \brief Interface for optimizers that consume accumulated gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently in the store, then
  /// zeroes them. `l2` adds weight decay λ·w to the gradient of every
  /// touched weight (the ‖Θ‖² term of Eq. 20).
  virtual void Step(ParameterStore* store, Scalar l2 = 0.0) = 0;

  /// Serializes all internal state (moments, step counts) so training can
  /// resume bit-identically from a checkpoint. Stateless optimizers write
  /// nothing. Hyper-parameters are NOT serialized — they come from config.
  virtual Status SaveState(std::ostream* out) const;

  /// Restores state written by SaveState of the same optimizer kind.
  /// `store` is the parameter store the optimizer steps; shapes are
  /// validated against it before any allocation is trusted.
  virtual Status LoadState(std::istream* in, const ParameterStore& store);
};

/// \brief Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  explicit Sgd(Scalar lr) : lr_(lr) {}
  void Step(ParameterStore* store, Scalar l2 = 0.0) override;

 private:
  Scalar lr_;
};

/// \brief Adam (Kingma & Ba) with per-row lazy state updates for
/// sparsely-touched embedding tables.
class Adam : public Optimizer {
 public:
  explicit Adam(Scalar lr, Scalar beta1 = 0.9, Scalar beta2 = 0.999,
                Scalar eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(ParameterStore* store, Scalar l2 = 0.0) override;

  /// Writes m/v moments and per-row step counts for every materialized
  /// per-parameter state (lazily-created states that don't exist yet are
  /// simply absent and re-created on demand after a restore).
  Status SaveState(std::ostream* out) const override;
  Status LoadState(std::istream* in, const ParameterStore& store) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    // Per-row step counts for bias correction under lazy updates.
    std::vector<int64_t> row_steps;
  };

  State& StateFor(ParameterStore* store, size_t index);
  void UpdateRow(Parameter* p, State* st, size_t row);

  Scalar lr_, beta1_, beta2_, eps_;
  std::vector<State> states_;
};

}  // namespace kgag

#endif  // KGAG_TENSOR_OPTIMIZER_H_
