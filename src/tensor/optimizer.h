// First-order optimizers over a ParameterStore. Adam is the paper's choice
// (§III-E); SGD is kept for tests and ablations. Both honour the sparse
// touch tracking on embedding tables: untouched rows are skipped, matching
// the "lazy" Adam variant common in recommender training.
#ifndef KGAG_TENSOR_OPTIMIZER_H_
#define KGAG_TENSOR_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "tensor/parameter.h"

namespace kgag {

/// \brief Interface for optimizers that consume accumulated gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently in the store, then
  /// zeroes them. `l2` adds weight decay λ·w to the gradient of every
  /// touched weight (the ‖Θ‖² term of Eq. 20).
  virtual void Step(ParameterStore* store, Scalar l2 = 0.0) = 0;
};

/// \brief Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  explicit Sgd(Scalar lr) : lr_(lr) {}
  void Step(ParameterStore* store, Scalar l2 = 0.0) override;

 private:
  Scalar lr_;
};

/// \brief Adam (Kingma & Ba) with per-row lazy state updates for
/// sparsely-touched embedding tables.
class Adam : public Optimizer {
 public:
  explicit Adam(Scalar lr, Scalar beta1 = 0.9, Scalar beta2 = 0.999,
                Scalar eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(ParameterStore* store, Scalar l2 = 0.0) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    // Per-row step counts for bias correction under lazy updates.
    std::vector<int64_t> row_steps;
  };

  State& StateFor(ParameterStore* store, size_t index);
  void UpdateRow(Parameter* p, State* st, size_t row);

  Scalar lr_, beta1_, beta2_, eps_;
  std::vector<State> states_;
};

}  // namespace kgag

#endif  // KGAG_TENSOR_OPTIMIZER_H_
