#include "tensor/arena.h"

#include <algorithm>

#include "common/check.h"

namespace kgag {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t AlignUp(size_t offset, size_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}

}  // namespace

BumpArena::BumpArena(size_t initial_bytes) {
  AppendBlock(std::max<size_t>(initial_bytes, 64));
}

size_t BumpArena::capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

BumpArena::Block& BumpArena::AppendBlock(size_t min_bytes) {
  // Geometric growth off the total owned so a long run of overflows
  // settles quickly; each block is at least as large as the request.
  size_t want = std::max(min_bytes, capacity());
  Block b;
  b.size = RoundUpPow2(std::max<size_t>(want, 64));
  b.data = std::make_unique<std::byte[]>(b.size);
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  return blocks_.back();
}

void* BumpArena::do_allocate(size_t bytes, size_t alignment) {
  KGAG_DCHECK((alignment & (alignment - 1)) == 0) << "non-pow2 alignment";
  Block* b = &blocks_[current_];
  size_t offset = AlignUp(b->used, alignment);
  if (offset + bytes > b->size) {
    // Later blocks (from a previous growth episode before Reset
    // coalesced) may fit; otherwise grow.
    while (current_ + 1 < blocks_.size()) {
      b = &blocks_[++current_];
      offset = AlignUp(b->used, alignment);
      if (offset + bytes <= b->size) break;
    }
    if (offset + bytes > blocks_[current_].size) {
      b = &AppendBlock(bytes + alignment);
      offset = AlignUp(b->used, alignment);
    } else {
      b = &blocks_[current_];
    }
  }
  void* p = b->data.get() + offset;
  b->used = offset + bytes;
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  return p;
}

void BumpArena::Reset() {
  high_water_ = std::max(high_water_, in_use_);
  if (blocks_.size() > 1) {
    // A growth episode happened: replace the block list with one block
    // sized to the high-water mark so future builds bump a single block.
    blocks_.clear();
    AppendBlock(high_water_);
  } else {
    blocks_[0].used = 0;
  }
  current_ = 0;
  in_use_ = 0;
}

}  // namespace kgag
