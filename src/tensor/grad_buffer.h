// Gradient routing for data-parallel training (DESIGN.md §9).
//
// The tape's backward pass reports parameter gradients through a GradSink
// instead of writing into Parameter::grad directly. The default sink
// preserves the original single-threaded behaviour; GradBuffer gives each
// worker shard a private accumulation buffer so threads never contend on
// the shared parameters, and FlushInto replays the buffered deltas into
// Parameter::grad in a deterministic order — making the floating-point
// summation tree a function of the shard structure alone, never of the
// thread count or execution interleaving.
#ifndef KGAG_TENSOR_GRAD_BUFFER_H_
#define KGAG_TENSOR_GRAD_BUFFER_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace kgag {

/// \brief Destination for parameter gradients produced by Tape::Backward.
class GradSink {
 public:
  virtual ~GradSink() = default;

  /// g has the parameter's full shape (weight matrices, biases).
  virtual void AddDense(Parameter* p, const Tensor& g) = 0;

  /// Row i of g (n x cols) accumulates into row rows[i] of the parameter
  /// (embedding-table gathers). Rows may repeat; repeats accumulate in
  /// order.
  virtual void AddRows(Parameter* p, std::span<const size_t> rows,
                       const Tensor& g) = 0;
};

/// \brief The original behaviour: gradients land in Parameter::grad
/// immediately, with sparse touch tracking. Stateless; use Instance().
class DirectGradSink : public GradSink {
 public:
  static DirectGradSink* Instance();

  void AddDense(Parameter* p, const Tensor& g) override;
  void AddRows(Parameter* p, std::span<const size_t> rows,
               const Tensor& g) override;
};

/// \brief Per-shard gradient accumulator: dense deltas for small
/// parameters, sparse row-delta slots for embedding tables.
///
/// One GradBuffer belongs to one worker shard. During backward it only
/// touches its own storage; after all shards of a batch finish, the train
/// loop calls FlushInto for each shard in shard order. Flush order is
/// parameter creation order, rows within a parameter in first-touch
/// order — both functions of the shard's example list only, so the
/// reduction is bit-identical for any thread count.
class GradBuffer : public GradSink {
 public:
  explicit GradBuffer(ParameterStore* store);

  void AddDense(Parameter* p, const Tensor& g) override;
  void AddRows(Parameter* p, std::span<const size_t> rows,
               const Tensor& g) override;

  /// Replays buffered deltas into Parameter::grad (+ touch tracking) of
  /// the store this buffer was built for. Does not reset the buffer.
  void FlushInto();

  /// Clears all deltas, keeping allocations (slot pools, dense tensors)
  /// warm for the next batch.
  void Reset();

  /// True when no gradient has been buffered since the last Reset.
  bool empty() const;

 private:
  struct Entry {
    Tensor dense;  ///< Allocated lazily at first AddDense; param shape.
    bool dense_touched = false;
    size_t cols = 0;  ///< Row width, captured at first AddRows.
    std::unordered_map<size_t, size_t> row_slot;  ///< param row -> slot
    std::vector<size_t> row_order;                ///< first-touch order
    std::vector<Scalar> row_data;                 ///< slot-major, cols wide
  };

  ParameterStore* store_;
  std::vector<Entry> entries_;  ///< Indexed by Parameter::index.
};

}  // namespace kgag

#endif  // KGAG_TENSOR_GRAD_BUFFER_H_
