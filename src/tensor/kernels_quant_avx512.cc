// AVX-512 tier of the quantized scoring kernels. Compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512dq -mfma -mf16c and only called
// after __builtin_cpu_supports("avx512f") && ("avx512bw") in
// kernels_quant.cc. Bit-identity with the scalar reference holds by the
// same argument as the AVX2 tier (see kernels_quant_avx2.cc): exact int32
// accumulation for int8, and for the convert-on-load paths a single
// 8-wide fused accumulator whose lanes coincide with the scalar stride-8
// discipline, reduced through the shared ReduceLanes8 tree.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace kgag {
namespace kernels {
namespace {

#include "tensor/qgemm_lanes.inc"

/// int32 dot, 32 codes per iteration: widen to int16 in a 512-bit lane,
/// multiply-add pairs into 16 int32 accumulators (exact).
inline int32_t DotInt8(size_t len, const int8_t* x, const int8_t* y) {
  __m512i acc = _mm512_setzero_si512();
  size_t p = 0;
  for (; p + 32 <= len; p += 32) {
    const __m512i xv = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p)));
    const __m512i yv = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + p)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(xv, yv));
  }
  int32_t sum = _mm512_reduce_add_epi32(acc);
  for (; p < len; ++p) {
    sum += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
  }
  return sum;
}

/// One 8-wide accumulator: lane j holds elements p ≡ j (mod 8), exactly
/// the scalar discipline. The reduction extracts the 256-bit halves
/// (lanes 0-3 and 4-7), adds them — the scalar tree's l[j] += l[j+4] —
/// then finishes through the shared scalar code.
inline double DotLanes8(size_t k, const double* x, const double* y) {
  __m512d acc = _mm512_setzero_pd();
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(x + p), _mm512_loadu_pd(y + p),
                          acc);
  }
  alignas(64) double l[8];
  _mm512_store_pd(l, acc);
  FmaTail(p, k, x, y, l);
  return ReduceLanes8(l);
}

inline void ConvertHalfRow(const uint16_t* in, size_t k, double* out) {
  size_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m512 f = _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + p)));
    _mm512_storeu_pd(out + p, _mm512_cvtps_pd(_mm512_castps512_ps256(f)));
    _mm512_storeu_pd(out + p + 8,
                     _mm512_cvtps_pd(_mm512_extractf32x8_ps(f, 1)));
  }
  for (; p < k; ++p) out[p] = static_cast<double>(HalfToFloat(in[p]));
}

inline void ConvertFloatRow(const float* in, size_t k, double* out) {
  size_t p = 0;
  for (; p + 8 <= k; p += 8) {
    _mm512_storeu_pd(out + p, _mm512_cvtps_pd(_mm256_loadu_ps(in + p)));
  }
  for (; p < k; ++p) out[p] = static_cast<double>(in[p]);
}

/// 8-lane FastExp: the scalar DAG from kernels.h replicated per lane
/// with unfused mul/add (this file is compiled with -ffp-contract=off so
/// the compiler cannot fuse them behind our back). 2^n comes from
/// bits(shifted) - bits(kShifter): `shifted` lives in [2^52, 2^53) where
/// the mantissa field IS the integer n + const, so the int64 difference
/// equals the scalar static_cast<int64_t>(n) exactly.
inline __m512d FastExp8(__m512d x) {
  x = _mm512_max_pd(x, _mm512_set1_pd(-708.0));
  x = _mm512_min_pd(x, _mm512_set1_pd(709.0));
  const __m512d shifter = _mm512_set1_pd(6755399441055744.0);  // 1.5*2^52
  const __m512d shifted = _mm512_add_pd(
      _mm512_mul_pd(x, _mm512_set1_pd(1.4426950408889634074)), shifter);
  const __m512d n = _mm512_sub_pd(shifted, shifter);
  const __m512d r = _mm512_sub_pd(
      _mm512_sub_pd(x,
                    _mm512_mul_pd(n, _mm512_set1_pd(6.93145751953125e-01))),
      _mm512_mul_pd(n, _mm512_set1_pd(1.42860682030941723212e-06)));
  __m512d p = _mm512_set1_pd(1.0 / 39916800.0);
  const double kC[] = {1.0 / 3628800.0, 1.0 / 362880.0, 1.0 / 40320.0,
                       1.0 / 5040.0,    1.0 / 720.0,    1.0 / 120.0,
                       1.0 / 24.0,      1.0 / 6.0,      0.5,
                       1.0,             1.0};
  for (double c : kC) {
    p = _mm512_add_pd(_mm512_mul_pd(p, r), _mm512_set1_pd(c));
  }
  const __m512i nbits = _mm512_sub_epi64(_mm512_castpd_si512(shifted),
                                         _mm512_castpd_si512(shifter));
  const __m512i ebits = _mm512_slli_epi64(
      _mm512_add_epi64(nbits, _mm512_set1_epi64(1023)), 52);
  return _mm512_mul_pd(p, _mm512_castsi512_pd(ebits));
}

template <typename T, void (*Convert)(const T*, size_t, double*)>
void QGemmConvert(size_t m, size_t n, size_t k, const T* a, const T* b,
                  double* c, size_t ldc) {
  std::vector<double> abuf(m * k);
  for (size_t i = 0; i < m; ++i) Convert(a + i * k, k, &abuf[i * k]);
  std::vector<double> brow(k);
  for (size_t j = 0; j < n; ++j) {
    Convert(b + j * k, k, brow.data());
    for (size_t i = 0; i < m; ++i) {
      c[i * ldc + j] = DotLanes8(k, &abuf[i * k], brow.data());
    }
  }
}

}  // namespace

/// Per-row-scale (block == 0) fast path: A is widened to int16 once per
/// 4-row tile, B is widened once per item row and shared by the tile's 4
/// accumulators, and the 4 horizontal reductions collapse into one
/// hadd tree. Legal because int8 block sums are exact int32 in any
/// accumulation order (the bit-identity contract in kernels.h) — the
/// float tiers cannot reorder like this, which is precisely the int8
/// tier's structural speed advantage at serving shapes (small k, the
/// per-dot epilogue otherwise rivals the dot itself).
void QGemmInt8RowScaleAvx512(size_t m, size_t n, size_t k, const int8_t* a,
                             const float* a_scales, const int8_t* b,
                             const float* b_scales, double* c, size_t ldc) {
  const size_t kv = k & ~size_t{31};  // vectorized prefix, 32 codes/step
  std::vector<int16_t> a16(4 * kv);
  for (size_t i0 = 0; i0 < m; i0 += 4) {
    const size_t it = std::min<size_t>(4, m - i0);
    for (size_t r = 0; r < it; ++r) {
      const int8_t* arow = a + (i0 + r) * k;
      for (size_t p = 0; p < kv; p += 32) {
        _mm512_storeu_si512(
            a16.data() + r * kv + p,
            _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(arow + p))));
      }
    }
    // a_scale[r] preloaded as doubles; lane r of the epilogue computes
    // double(acc_r) * (double(asc_r) * double(bsc_j)) — the reference's
    // expression verbatim.
    alignas(32) double asc4[4] = {0, 0, 0, 0};
    for (size_t r = 0; r < it; ++r) {
      asc4[r] = static_cast<double>(a_scales[i0 + r]);
    }
    const __m256d ascv = _mm256_load_pd(asc4);
    for (size_t j = 0; j < n; ++j) {
      const int8_t* brow = b + j * k;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (size_t p = 0; p < kv; p += 32) {
        const __m512i bv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(brow + p)));
        const int16_t* ap = a16.data() + p;
        acc0 = _mm512_add_epi32(
            acc0, _mm512_madd_epi16(_mm512_loadu_si512(ap), bv));
        acc1 = _mm512_add_epi32(
            acc1, _mm512_madd_epi16(_mm512_loadu_si512(ap + kv), bv));
        acc2 = _mm512_add_epi32(
            acc2, _mm512_madd_epi16(_mm512_loadu_si512(ap + 2 * kv), bv));
        acc3 = _mm512_add_epi32(
            acc3, _mm512_madd_epi16(_mm512_loadu_si512(ap + 3 * kv), bv));
      }
      // Fold 512 -> 256 per accumulator, then one hadd tree yields the
      // tile's 4 sums in one xmm: [acc0, acc1, acc2, acc3].
      const __m256i f0 = _mm256_add_epi32(_mm512_castsi512_si256(acc0),
                                          _mm512_extracti64x4_epi64(acc0, 1));
      const __m256i f1 = _mm256_add_epi32(_mm512_castsi512_si256(acc1),
                                          _mm512_extracti64x4_epi64(acc1, 1));
      const __m256i f2 = _mm256_add_epi32(_mm512_castsi512_si256(acc2),
                                          _mm512_extracti64x4_epi64(acc2, 1));
      const __m256i f3 = _mm256_add_epi32(_mm512_castsi512_si256(acc3),
                                          _mm512_extracti64x4_epi64(acc3, 1));
      const __m256i h01 = _mm256_hadd_epi32(f0, f1);
      const __m256i h23 = _mm256_hadd_epi32(f2, f3);
      const __m256i h = _mm256_hadd_epi32(h01, h23);
      __m128i s = _mm_add_epi32(_mm256_castsi256_si128(h),
                                _mm256_extracti128_si256(h, 1));
      if (kv < k) {  // ragged k tail, exact int32 adds
        alignas(16) int32_t st[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(st), s);
        for (size_t r = 0; r < it; ++r) {
          const int8_t* arow = a + (i0 + r) * k;
          for (size_t p = kv; p < k; ++p) {
            st[r] += static_cast<int32_t>(arow[p]) *
                     static_cast<int32_t>(brow[p]);
          }
        }
        s = _mm_load_si128(reinterpret_cast<const __m128i*>(st));
      }
      const __m256d scale = _mm256_mul_pd(
          ascv, _mm256_set1_pd(static_cast<double>(b_scales[j])));
      alignas(32) double outs[4];
      _mm256_store_pd(outs, _mm256_mul_pd(_mm256_cvtepi32_pd(s), scale));
      for (size_t r = 0; r < it; ++r) c[(i0 + r) * ldc + j] = outs[r];
    }
  }
}

void QGemmInt8Avx512(size_t m, size_t n, size_t k, uint32_t block,
                     const int8_t* a, const float* a_scales, const int8_t* b,
                     const float* b_scales, double* c, size_t ldc) {
  if (block == 0) {
    QGemmInt8RowScaleAvx512(m, n, k, a, a_scales, b, b_scales, c, ldc);
    return;
  }
  const size_t bs = block;
  const size_t spr = (k + block - 1) / block;
  for (size_t j = 0; j < n; ++j) {
    const int8_t* brow = b + j * k;
    const float* bsc = b_scales + j * spr;
    for (size_t i = 0; i < m; ++i) {
      const int8_t* arow = a + i * k;
      const float* asc = a_scales + i * spr;
      double sum = 0.0;
      for (size_t blk = 0, p0 = 0; p0 < k; ++blk, p0 += bs) {
        const size_t p1 = std::min(k, p0 + bs);
        const int32_t acc = DotInt8(p1 - p0, arow + p0, brow + p0);
        sum += static_cast<double>(acc) * (static_cast<double>(asc[blk]) *
                                           static_cast<double>(bsc[blk]));
      }
      c[i * ldc + j] = sum;
    }
  }
}

void QGemmFp16Avx512(size_t m, size_t n, size_t k, const uint16_t* a,
                     const uint16_t* b, double* c, size_t ldc) {
  QGemmConvert<uint16_t, &ConvertHalfRow>(m, n, k, a, b, c, ldc);
}

void QGemmFp32Avx512(size_t m, size_t n, size_t k, const float* a,
                     const float* b, double* c, size_t ldc) {
  QGemmConvert<float, &ConvertFloatRow>(m, n, k, a, b, c, ldc);
}

void SoftmaxScoreReduceAvx512(size_t l, size_t n, bool use_sp,
                              const double* sp, size_t ld, const double* pi,
                              double* out) {
  // Eight candidates per iteration; the member loops run inside, each
  // lane tracing the scalar reference's per-item DAG (see kernels.h
  // contract). alpha / exp values for the current 8-candidate block are
  // staged in a small buffer so each is computed once.
  std::vector<double> buf(2 * l * 8);
  double* ab = buf.data();
  double* eb = buf.data() + l * 8;
  size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    __m512d mx = _mm512_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m512d s =
          use_sp ? _mm512_loadu_pd(sp + i * ld + p) : _mm512_setzero_pd();
      const __m512d a = _mm512_add_pd(s, _mm512_set1_pd(pi[i]));
      _mm512_storeu_pd(ab + i * 8, a);
      mx = i == 0 ? a : _mm512_max_pd(mx, a);
    }
    __m512d sum = _mm512_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m512d e =
          FastExp8(_mm512_sub_pd(_mm512_loadu_pd(ab + i * 8), mx));
      _mm512_storeu_pd(eb + i * 8, e);
      sum = _mm512_add_pd(sum, e);
    }
    const __m512d inv = _mm512_div_pd(_mm512_set1_pd(1.0), sum);
    __m512d score = _mm512_setzero_pd();
    for (size_t i = 0; i < l; ++i) {
      const __m512d w = _mm512_mul_pd(_mm512_loadu_pd(eb + i * 8), inv);
      score = _mm512_add_pd(
          score, _mm512_mul_pd(w, _mm512_loadu_pd(sp + i * ld + p)));
    }
    _mm512_storeu_pd(out + p, score);
  }
  // Scalar tail — same DAG, via the shared scalar FastExp.
  for (; p < n; ++p) {
    for (size_t i = 0; i < l; ++i) {
      ab[i] = (use_sp ? sp[i * ld + p] : 0.0) + pi[i];
    }
    double mx = ab[0];
    for (size_t i = 1; i < l; ++i) mx = std::max(mx, ab[i]);
    double sum = 0.0;
    for (size_t i = 0; i < l; ++i) {
      ab[i] = FastExp(ab[i] - mx);
      sum += ab[i];
    }
    const double inv = 1.0 / sum;
    double score = 0.0;
    for (size_t i = 0; i < l; ++i) {
      score += (ab[i] * inv) * sp[i * ld + p];
    }
    out[p] = score;
  }
}

}  // namespace kernels
}  // namespace kgag
