#include "tensor/quant.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/binary_io.h"
#include "common/check.h"

namespace kgag {

namespace {

Status QuantError(const std::string& what) {
  return Status::InvalidArgument("quantized matrix: " + what);
}

size_t ScalesPerRowFor(QuantType type, size_t cols, uint32_t block) {
  if (type != QuantType::kInt8) return 0;
  if (block == 0) return cols == 0 ? 0 : 1;
  return (cols + block - 1) / block;
}

}  // namespace

const char* QuantTypeName(QuantType type) {
  switch (type) {
    case QuantType::kFp64:
      return "fp64";
    case QuantType::kFp32:
      return "fp32";
    case QuantType::kFp16:
      return "fp16";
    case QuantType::kInt8:
      return "int8";
  }
  return "unknown";
}

bool ParseQuantType(std::string_view name, QuantType* out) {
  if (name == "fp64") {
    *out = QuantType::kFp64;
  } else if (name == "fp32") {
    *out = QuantType::kFp32;
  } else if (name == "fp16") {
    *out = QuantType::kFp16;
  } else if (name == "int8") {
    *out = QuantType::kInt8;
  } else {
    return false;
  }
  return true;
}

size_t QuantElemBytes(QuantType type) {
  switch (type) {
    case QuantType::kFp64:
      return sizeof(double);
    case QuantType::kFp32:
      return sizeof(float);
    case QuantType::kFp16:
      return sizeof(uint16_t);
    case QuantType::kInt8:
      return sizeof(int8_t);
  }
  return 0;
}

size_t QuantScalesPerRow(QuantType type, size_t cols, uint32_t block) {
  return ScalesPerRowFor(type, cols, block);
}

size_t QuantizedMatrix::ScalesPerRow() const {
  return ScalesPerRowFor(type, cols, block);
}

RepView MakeRepView(const Tensor& t) {
  RepView v;
  v.type = QuantType::kFp64;
  v.rows = t.rows();
  v.cols = t.cols();
  v.codes = reinterpret_cast<const uint8_t*>(t.data());
  return v;
}

RepView MakeRepView(const QuantizedMatrix& q) {
  RepView v;
  v.type = q.type;
  v.rows = q.rows;
  v.cols = q.cols;
  v.block = q.block;
  v.codes = q.data.data();
  v.scales = q.scales.data();
  return v;
}

uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xffu) - 127;
  const uint32_t mant = x & 0x7fffffu;

  if (exp == 128) {  // inf / nan
    // Keep NaNs NaN: the mantissa MSB survives even when the low payload
    // bits shift out.
    const uint16_t payload =
        mant != 0 ? static_cast<uint16_t>(0x200u | (mant >> 13)) : 0;
    return static_cast<uint16_t>(sign | 0x7c00u | payload);
  }
  if (exp > 15) {  // too large for half: round to inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (exp >= -14) {  // normal half
    uint32_t val = (static_cast<uint32_t>(exp + 15) << 10) | (mant >> 13);
    const uint32_t rest = mant & 0x1fffu;
    // Round to nearest even; a carry may roll into the exponent (and on
    // to inf), which is exactly the IEEE behaviour.
    if (rest > 0x1000u || (rest == 0x1000u && (val & 1u))) val += 1;
    return static_cast<uint16_t>(sign | val);
  }
  if (exp >= -25) {  // subnormal half
    const uint32_t m_full = mant | 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(-(exp + 1));  // 14..24
    uint32_t code = m_full >> shift;
    const uint32_t rem = m_full & ((1u << shift) - 1);
    const uint32_t half_ulp = 1u << (shift - 1);
    if (rem > half_ulp || (rem == half_ulp && (code & 1u))) code += 1;
    return static_cast<uint16_t>(sign | code);
  }
  return sign;  // underflow to signed zero
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h >> 15) << 31;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {  // subnormal: renormalize
      uint32_t m = mant;
      int e = -1;
      do {
        m <<= 1;
        ++e;
      } while ((m & 0x400u) == 0);
      x = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3ffu) << 13);
    }
  } else if (exp == 31) {  // inf / nan
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp + 112) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

void QuantizeRows(QuantType type, uint32_t block, size_t rows, size_t cols,
                  const double* src_rows, uint8_t* codes, float* scales) {
  KGAG_CHECK(type != QuantType::kFp64)
      << "kFp64 is the identity tier; keep the Tensor";
  const size_t row_bytes = cols * QuantElemBytes(type);
  const size_t spr = ScalesPerRowFor(type, cols, block);
  for (size_t r = 0; r < rows; ++r) {
    const double* src = src_rows + r * cols;
    uint8_t* dst = codes + r * row_bytes;
    if (type == QuantType::kFp32) {
      float* out = reinterpret_cast<float*>(dst);
      for (size_t c = 0; c < cols; ++c) out[c] = static_cast<float>(src[c]);
    } else if (type == QuantType::kFp16) {
      uint16_t* out = reinterpret_cast<uint16_t*>(dst);
      for (size_t c = 0; c < cols; ++c) {
        out[c] = FloatToHalf(static_cast<float>(src[c]));
      }
    } else {  // kInt8
      int8_t* out = reinterpret_cast<int8_t*>(dst);
      float* row_scales = scales + r * spr;
      const size_t bs = block == 0 ? cols : block;
      for (size_t b = 0, c0 = 0; c0 < cols; ++b, c0 += bs) {
        const size_t c1 = std::min(cols, c0 + bs);
        double amax = 0.0;
        for (size_t c = c0; c < c1; ++c) amax = std::max(amax, std::fabs(src[c]));
        const double scale = amax / 127.0;
        const double inv = amax == 0.0 ? 0.0 : 127.0 / amax;
        row_scales[b] = static_cast<float>(scale);
        for (size_t c = c0; c < c1; ++c) {
          const long v = std::lround(src[c] * inv);
          out[c] = static_cast<int8_t>(std::min(127l, std::max(-127l, v)));
        }
      }
    }
  }
}

QuantizedMatrix QuantizeMatrix(const Tensor& t, QuantType type,
                               uint32_t block) {
  QuantizedMatrix q;
  q.type = type;
  q.rows = t.rows();
  q.cols = t.cols();
  q.block = type == QuantType::kInt8 ? block : 0;
  q.data.resize(q.rows * q.RowBytes());
  q.scales.resize(q.rows * q.ScalesPerRow());
  QuantizeRows(type, q.block, q.rows, q.cols, t.data(), q.data.data(),
               q.scales.data());
  return q;
}

namespace {

void DequantizeRowImpl(QuantType type, size_t cols, uint32_t block,
                       const uint8_t* src, const float* scales, double* out) {
  switch (type) {
    case QuantType::kFp64:
      std::memcpy(out, src, cols * sizeof(double));
      break;
    case QuantType::kFp32: {
      const float* in = reinterpret_cast<const float*>(src);
      for (size_t c = 0; c < cols; ++c) out[c] = static_cast<double>(in[c]);
      break;
    }
    case QuantType::kFp16: {
      const uint16_t* in = reinterpret_cast<const uint16_t*>(src);
      for (size_t c = 0; c < cols; ++c) {
        out[c] = static_cast<double>(HalfToFloat(in[c]));
      }
      break;
    }
    case QuantType::kInt8: {
      const int8_t* in = reinterpret_cast<const int8_t*>(src);
      const size_t bs = block == 0 ? cols : block;
      for (size_t b = 0, c0 = 0; c0 < cols; ++b, c0 += bs) {
        const size_t c1 = std::min(cols, c0 + bs);
        const double s = static_cast<double>(scales[b]);
        for (size_t c = c0; c < c1; ++c) {
          out[c] = static_cast<double>(in[c]) * s;
        }
      }
      break;
    }
  }
}

}  // namespace

void DequantizeRow(const QuantizedMatrix& q, size_t r, double* out) {
  KGAG_DCHECK(r < q.rows);
  DequantizeRowImpl(q.type, q.cols, q.block, q.RowData(r),
                    q.type == QuantType::kInt8 ? q.RowScales(r) : nullptr,
                    out);
}

void DequantizeRow(const RepView& v, size_t r, double* out) {
  KGAG_DCHECK(r < v.rows);
  DequantizeRowImpl(v.type, v.cols, v.block, v.RowData(r),
                    v.type == QuantType::kInt8 ? v.RowScales(r) : nullptr,
                    out);
}

Tensor DequantizeMatrix(const QuantizedMatrix& q) {
  Tensor t(q.rows, q.cols);
  for (size_t r = 0; r < q.rows; ++r) {
    DequantizeRow(q, r, t.data() + r * q.cols);
  }
  return t;
}

Status WriteQuantizedMatrix(std::ostream* out, const QuantizedMatrix& q) {
  if (q.data.size() != q.rows * q.RowBytes() ||
      q.scales.size() != q.rows * q.ScalesPerRow()) {
    return QuantError("inconsistent payload sizes");
  }
  bio::WriteU8(out, static_cast<uint8_t>(q.type));
  bio::WriteU64(out, q.rows);
  bio::WriteU64(out, q.cols);
  bio::WriteU32(out, q.block);
  bio::WritePodVector(out, q.scales);
  bio::WritePodVector(out, q.data);
  return Status::OK();
}

Status ReadQuantizedMatrix(std::istream* in, QuantizedMatrix* q,
                           uint64_t max_elems) {
  uint8_t type = 0;
  uint64_t rows = 0, cols = 0;
  uint32_t block = 0;
  if (!bio::ReadU8(in, &type) || !bio::ReadU64(in, &rows) ||
      !bio::ReadU64(in, &cols) || !bio::ReadU32(in, &block)) {
    return QuantError("truncated header");
  }
  if (type != static_cast<uint8_t>(QuantType::kFp32) &&
      type != static_cast<uint8_t>(QuantType::kFp16) &&
      type != static_cast<uint8_t>(QuantType::kInt8)) {
    return QuantError("unknown quantization type tag " + std::to_string(type));
  }
  if (rows > max_elems || cols > max_elems || rows * cols > max_elems) {
    return QuantError("declared shape exceeds allocation bound");
  }
  QuantizedMatrix parsed;
  parsed.type = static_cast<QuantType>(type);
  parsed.rows = static_cast<size_t>(rows);
  parsed.cols = static_cast<size_t>(cols);
  parsed.block = block;
  if (!bio::ReadPodVector(in, &parsed.scales, max_elems) ||
      !bio::ReadPodVector(in, &parsed.data, max_elems * sizeof(double))) {
    return QuantError("truncated payload");
  }
  if (parsed.scales.size() != parsed.rows * parsed.ScalesPerRow()) {
    return QuantError("scale count does not match shape");
  }
  if (parsed.data.size() != parsed.rows * parsed.RowBytes()) {
    return QuantError("code bytes do not match shape");
  }
  *q = std::move(parsed);
  return Status::OK();
}

}  // namespace kgag
