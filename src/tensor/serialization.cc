#include "tensor/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/file_io.h"

namespace kgag {

namespace {

constexpr char kMagic[8] = {'K', 'G', 'A', 'G', 'P', 'S', '0', '1'};

// Bound on the name-length prefix read from a file. Real parameter names
// are tens of bytes; anything larger is a corrupt or hostile file, and
// must be rejected before the length is used to size an allocation.
constexpr uint32_t kMaxNameLen = 4096;

void WriteU32(std::ostream* out, uint32_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream* in, uint32_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

bool ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

}  // namespace

Status SaveParameters(const ParameterStore& store, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  out->write(kMagic, sizeof(kMagic));
  WriteU64(out, store.params().size());
  for (const auto& p : store.params()) {
    WriteU32(out, static_cast<uint32_t>(p->name.size()));
    out->write(p->name.data(),
               static_cast<std::streamsize>(p->name.size()));
    WriteU64(out, p->value.rows());
    WriteU64(out, p->value.cols());
    out->write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.size() *
                                            sizeof(Scalar)));
  }
  if (!out->good()) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveParametersToFile(const ParameterStore& store,
                            const std::string& path) {
  // Serialize to memory first, then write atomically (temp + fsync +
  // rename): a crash or full disk mid-write must never destroy the
  // previous good file at `path`.
  std::ostringstream buf(std::ios::binary);
  KGAG_RETURN_NOT_OK(SaveParameters(store, &buf));
  return AtomicWriteFile(path, buf.view());
}

Status LoadParameters(std::istream* in, ParameterStore* store) {
  if (in == nullptr || store == nullptr) {
    return Status::InvalidArgument("null stream or store");
  }
  char magic[sizeof(kMagic)];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a KGAG parameter file");
  }
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::IoError("truncated header");
  if (count != store->params().size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", store has " + std::to_string(store->params().size()));
  }
  for (size_t i = 0; i < count; ++i) {
    Parameter* p = store->at(i);
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len)) return Status::IoError("truncated name");
    if (name_len > kMaxNameLen) {
      return Status::InvalidArgument(
          "parameter name length " + std::to_string(name_len) +
          " exceeds limit " + std::to_string(kMaxNameLen) +
          " (corrupt file?)");
    }
    std::string name(name_len, '\0');
    in->read(name.data(), name_len);
    if (!in->good()) return Status::IoError("truncated name bytes");
    if (name != p->name) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(i) + ": file '" + name +
                                     "' vs store '" + p->name + "'");
    }
    uint64_t rows = 0, cols = 0;
    if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
      return Status::IoError("truncated shape");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("shape mismatch for '" + name + "'");
    }
    // Belt and braces before the bulk read: the element count implied by
    // the file must equal the destination buffer exactly (guards against
    // a corrupt shape that individually matches but overflows a product).
    if (rows * cols != p->value.size()) {
      return Status::InvalidArgument("element count mismatch for '" + name +
                                     "'");
    }
    in->read(reinterpret_cast<char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(Scalar)));
    if (!in->good()) return Status::IoError("truncated values for " + name);
  }
  return Status::OK();
}

Status LoadParametersFromFile(const std::string& path,
                              ParameterStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return LoadParameters(&in, store);
}

Status WriteTensor(std::ostream* out, const Tensor& t) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  WriteU64(out, t.rows());
  WriteU64(out, t.cols());
  out->write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.size() * sizeof(Scalar)));
  if (!out->good()) return Status::IoError("tensor write failed");
  return Status::OK();
}

Status ReadTensor(std::istream* in, Tensor* t, uint64_t max_elems) {
  if (in == nullptr || t == nullptr) {
    return Status::InvalidArgument("null stream or tensor");
  }
  uint64_t rows = 0, cols = 0;
  if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
    return Status::IoError("truncated tensor shape");
  }
  // Guard the product before it sizes an allocation: either factor can be
  // hostile, and rows*cols must not wrap.
  if (rows > max_elems || cols > max_elems ||
      (rows != 0 && cols > max_elems / rows)) {
    return Status::InvalidArgument("tensor shape out of range");
  }
  Tensor read(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in->read(reinterpret_cast<char*>(read.data()),
           static_cast<std::streamsize>(read.size() * sizeof(Scalar)));
  if (!in->good() && read.size() != 0) {
    return Status::IoError("truncated tensor values");
  }
  *t = std::move(read);
  return Status::OK();
}

}  // namespace kgag
