// Dense 2-D row-major tensor of doubles: the numeric workhorse under the
// autodiff tape. Vectors are represented as 1xN (row) matrices.
#ifndef KGAG_TENSOR_TENSOR_H_
#define KGAG_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace kgag {

/// Numeric type used throughout the library. Double keeps numerical
/// gradient checks tight; dataset sizes here make the cost irrelevant.
using Scalar = double;

/// \brief Dense row-major matrix. Shape is (rows, cols); a scalar is 1x1.
///
/// Storage is allocator-aware (std::pmr): by default elements live on the
/// heap exactly as before, but a tensor can be bound to a
/// std::pmr::memory_resource (the tape's bump arena) at construction.
/// Allocator propagation follows pmr rules, which is what makes arena use
/// safe here:
///   - copies always land on the default (heap) resource, so a copy taken
///     from a tape node never dangles when the arena is reset;
///   - moves carry the resource with the buffer, so moving an
///     arena-backed tensor into a tape node is free and stays on-arena;
///   - assignment keeps the destination's resource (element-wise copy),
///     so an arena never leaks into a long-lived tensor by assignment.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}

  /// Empty tensor whose future allocations come from `mr`. ResetShape /
  /// assignment grow it on that resource.
  explicit Tensor(std::pmr::memory_resource* mr)
      : rows_(0), cols_(0), data_(mr) {}

  /// Zero-initialized tensor of the given shape.
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Zero-initialized tensor allocated from `mr`.
  Tensor(size_t rows, size_t cols, std::pmr::memory_resource* mr)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0, mr) {}

  /// Tensor filled with `fill`.
  Tensor(size_t rows, size_t cols, Scalar fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a nested initializer list: Tensor({{1,2},{3,4}}).
  Tensor(std::initializer_list<std::initializer_list<Scalar>> rows);

  /// 1xN row vector from a flat list.
  static Tensor Row(std::initializer_list<Scalar> values);

  /// 1xN row vector copied from a std::vector.
  static Tensor Row(const std::vector<Scalar>& values);

  /// 1x1 scalar tensor.
  static Tensor Scalar1(Scalar v) {
    Tensor t(1, 1);
    t.data_[0] = v;
    return t;
  }

  /// Identity matrix of size n.
  static Tensor Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  Scalar& at(size_t r, size_t c) {
    KGAG_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  Scalar at(size_t r, size_t c) const {
    KGAG_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  Scalar& operator[](size_t i) {
    KGAG_DCHECK(i < data_.size());
    return data_[i];
  }
  Scalar operator[](size_t i) const {
    KGAG_DCHECK(i < data_.size());
    return data_[i];
  }

  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }

  /// Value of a 1x1 tensor.
  Scalar item() const {
    KGAG_CHECK(size() == 1) << "item() on tensor of size " << size();
    return data_[0];
  }

  void Fill(Scalar v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0); }

  /// Reshapes in place to rows x cols, zero-filled, reusing existing
  /// capacity and keeping the bound memory resource (an arena-backed
  /// gradient stays arena-backed across backward passes).
  void ResetShape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Empties the tensor (shape 0x0) without giving up capacity or the
  /// bound memory resource.
  void Release() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
  }

  /// The memory resource backing this tensor's storage.
  std::pmr::memory_resource* resource() const {
    return data_.get_allocator().resource();
  }

  /// Element-wise in-place accumulate: this += other.
  void Add(const Tensor& other);
  /// this += alpha * other.
  void Axpy(Scalar alpha, const Tensor& other);
  /// this *= alpha.
  void Scale(Scalar alpha);
  /// Element-wise in-place Hadamard product: this *= other.
  void Mul(const Tensor& other);
  /// Applies fn to every element in place. Templated so per-element
  /// lambdas inline into the loop (no std::function indirection on hot
  /// paths like the tape's activation ops).
  template <typename Fn>
  void Apply(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
  }

  /// Sum of all elements.
  Scalar Sum() const;
  /// Sum of squared elements (‖x‖²).
  Scalar SquaredNorm() const;
  /// Largest |element|.
  Scalar AbsMax() const;

  /// Copy of row r as a 1xC tensor.
  Tensor RowAt(size_t r) const;
  /// Overwrites row r from a 1xC tensor.
  void SetRow(size_t r, const Tensor& row);
  /// Adds a 1xC tensor into row r.
  void AddToRow(size_t r, const Tensor& row);

  /// Out-of-place transpose.
  Tensor Transposed() const;

  bool operator==(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Compact debug rendering, e.g. "[2x3: 1 2 3; 4 5 6]".
  std::string ToString(int max_elems = 24) const;

 private:
  size_t rows_;
  size_t cols_;
  std::pmr::vector<Scalar> data_;
};

/// C = A * B. Shapes must agree (A: m×k, B: k×n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = Aᵀ * B.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * Bᵀ.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Element-wise sum (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// Element-wise difference.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Element-wise (Hadamard) product.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Dot product of two same-shape tensors viewed as flat vectors.
Scalar Dot(const Tensor& a, const Tensor& b);

/// True when all elements differ by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, Scalar rtol = 1e-6,
              Scalar atol = 1e-9);

}  // namespace kgag

#endif  // KGAG_TENSOR_TENSOR_H_
