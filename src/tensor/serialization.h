// Binary (de)serialization of parameter stores, so trained models can be
// saved and reloaded without retraining. The format is a simple tagged
// container:
//   magic "KGAGPS01" | uint64 count | per parameter:
//     uint32 name_len | name bytes | uint64 rows | uint64 cols |
//     rows*cols little-endian doubles
// Loading validates magic, names and shapes against the existing store —
// a store must be re-created with the same architecture before loading.
#ifndef KGAG_TENSOR_SERIALIZATION_H_
#define KGAG_TENSOR_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.h"
#include "tensor/parameter.h"

namespace kgag {

/// Writes every parameter's values to the stream.
Status SaveParameters(const ParameterStore& store, std::ostream* out);

/// Writes every parameter's values to a file.
Status SaveParametersToFile(const ParameterStore& store,
                            const std::string& path);

/// Reads values into an existing store. The stream must contain exactly
/// the same parameters (names, order, shapes) the store declares;
/// mismatches return InvalidArgument and leave already-read parameters
/// overwritten (treat failure as fatal for the store).
Status LoadParameters(std::istream* in, ParameterStore* store);

/// Reads values from a file into an existing store.
Status LoadParametersFromFile(const std::string& path, ParameterStore* store);

/// Writes one tensor in the per-parameter layout above (u64 rows |
/// u64 cols | raw little-endian doubles), for callers embedding tensors
/// in their own containers (e.g. the serving artifact).
Status WriteTensor(std::ostream* out, const Tensor& t);

/// Reads a tensor written by WriteTensor. `max_elems` bounds the
/// allocation the declared shape may request; corrupt shapes fail
/// instead of sizing a buffer.
Status ReadTensor(std::istream* in, Tensor* t,
                  uint64_t max_elems = uint64_t{1} << 32);

}  // namespace kgag

#endif  // KGAG_TENSOR_SERIALIZATION_H_
