#include "data/interactions.h"

#include <algorithm>

namespace kgag {

InteractionMatrix InteractionMatrix::FromPairs(int32_t num_rows,
                                               int32_t num_items,
                                               std::vector<Interaction> pairs) {
  for (const Interaction& p : pairs) {
    KGAG_CHECK(p.row >= 0 && p.row < num_rows)
        << "interaction row " << p.row << " out of range";
    KGAG_CHECK(p.item >= 0 && p.item < num_items)
        << "interaction item " << p.item << " out of range";
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Interaction& a, const Interaction& b) {
              return a.row != b.row ? a.row < b.row : a.item < b.item;
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  InteractionMatrix m;
  m.num_rows_ = num_rows;
  m.num_items_ = num_items;
  m.offsets_.assign(static_cast<size_t>(num_rows) + 1, 0);
  m.items_.reserve(pairs.size());
  for (const Interaction& p : pairs) {
    ++m.offsets_[p.row + 1];
    m.items_.push_back(p.item);
  }
  for (int32_t r = 0; r < num_rows; ++r) {
    m.offsets_[r + 1] += m.offsets_[r];
  }
  return m;
}

bool InteractionMatrix::Contains(int32_t row, ItemId item) const {
  const auto items = ItemsOf(row);
  return std::binary_search(items.begin(), items.end(), item);
}

std::vector<Interaction> InteractionMatrix::ToPairs() const {
  std::vector<Interaction> out;
  out.reserve(items_.size());
  for (int32_t r = 0; r < num_rows_; ++r) {
    for (ItemId v : ItemsOf(r)) out.push_back(Interaction{r, v});
  }
  return out;
}

}  // namespace kgag
