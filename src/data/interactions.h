// Sparse binary interaction storage: user-item (Y^U) and group-item (Y^G)
// implicit-feedback matrices from §III-A, stored as per-row sorted item
// lists for O(log d) membership checks.
#ifndef KGAG_DATA_INTERACTIONS_H_
#define KGAG_DATA_INTERACTIONS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"

namespace kgag {

using UserId = int32_t;
using ItemId = int32_t;
using GroupId = int32_t;

/// \brief One observed (row, item) engagement; `row` is a user or group.
struct Interaction {
  int32_t row = -1;
  ItemId item = -1;

  bool operator==(const Interaction& o) const {
    return row == o.row && item == o.item;
  }
};

/// \brief Immutable binary interaction matrix in CSR-like layout.
class InteractionMatrix {
 public:
  InteractionMatrix() = default;

  /// Deduplicates pairs and builds the index.
  static InteractionMatrix FromPairs(int32_t num_rows, int32_t num_items,
                                     std::vector<Interaction> pairs);

  int32_t num_rows() const { return num_rows_; }
  int32_t num_items() const { return num_items_; }
  size_t num_interactions() const { return items_.size(); }

  /// Sorted item ids the row engaged with.
  std::span<const ItemId> ItemsOf(int32_t row) const {
    KGAG_DCHECK(row >= 0 && row < num_rows_);
    return std::span<const ItemId>(items_.data() + offsets_[row],
                                   offsets_[row + 1] - offsets_[row]);
  }

  size_t RowDegree(int32_t row) const {
    KGAG_DCHECK(row >= 0 && row < num_rows_);
    return offsets_[row + 1] - offsets_[row];
  }

  /// y_{row,item} == 1?
  bool Contains(int32_t row, ItemId item) const;

  /// All interactions as (row, item) pairs, row-major order.
  std::vector<Interaction> ToPairs() const;

  /// Mean interactions per row (e.g. Table I "Inter./group").
  double MeanRowDegree() const {
    return num_rows_ == 0 ? 0.0
                          : static_cast<double>(items_.size()) / num_rows_;
  }

 private:
  int32_t num_rows_ = 0;
  int32_t num_items_ = 0;
  std::vector<size_t> offsets_;  // size num_rows_ + 1
  std::vector<ItemId> items_;
};

/// \brief Group membership table: group id -> member user ids.
class GroupTable {
 public:
  GroupTable() = default;
  explicit GroupTable(std::vector<std::vector<UserId>> members)
      : members_(std::move(members)) {}

  int32_t num_groups() const { return static_cast<int32_t>(members_.size()); }

  std::span<const UserId> MembersOf(GroupId g) const {
    KGAG_DCHECK(g >= 0 && g < num_groups());
    return members_[g];
  }

  size_t GroupSize(GroupId g) const { return MembersOf(g).size(); }

  /// Appends a group; returns its id.
  GroupId AddGroup(std::vector<UserId> members) {
    members_.push_back(std::move(members));
    return num_groups() - 1;
  }

 private:
  std::vector<std::vector<UserId>> members_;
};

}  // namespace kgag

#endif  // KGAG_DATA_INTERACTIONS_H_
