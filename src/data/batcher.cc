#include "data/batcher.h"

namespace kgag {

Batcher::Batcher(const GroupRecDataset* dataset, Options options)
    : dataset_(dataset),
      options_(options),
      group_negatives_(&dataset->group_item),
      user_negatives_(&dataset->user_item) {
  KGAG_CHECK(dataset != nullptr);
  KGAG_CHECK_GT(options_.group_batch_size, 0u);
  group_order_ = dataset_->split.train;
  user_order_ = dataset_->user_item.ToPairs();
}

void Batcher::BeginEpoch(Rng* rng) {
  if (options_.max_group_pairs_per_epoch > 0 &&
      group_order_.size() != dataset_->split.train.size()) {
    group_order_ = dataset_->split.train;  // re-draw from the full set
  }
  rng->Shuffle(&group_order_);
  if (options_.max_group_pairs_per_epoch > 0 &&
      group_order_.size() > options_.max_group_pairs_per_epoch) {
    group_order_.resize(options_.max_group_pairs_per_epoch);
  }
  rng->Shuffle(&user_order_);
  group_cursor_ = 0;
  user_cursor_ = 0;
}

size_t Batcher::BatchesPerEpoch() const {
  return (group_order_.size() + options_.group_batch_size - 1) /
         options_.group_batch_size;
}

bool Batcher::NextBatch(Rng* rng, MiniBatch* batch) {
  batch->group_triplets.clear();
  batch->user_instances.clear();
  if (group_cursor_ >= group_order_.size()) return false;

  const size_t end =
      std::min(group_cursor_ + options_.group_batch_size, group_order_.size());
  for (; group_cursor_ < end; ++group_cursor_) {
    const Interaction& pos = group_order_[group_cursor_];
    GroupTriplet t;
    t.group = pos.row;
    t.positive = pos.item;
    t.negative = group_negatives_.Sample(pos.row, rng);
    batch->group_triplets.push_back(t);
  }

  const size_t user_pos = static_cast<size_t>(
      options_.user_ratio * static_cast<double>(batch->group_triplets.size()));
  for (size_t i = 0; i < user_pos && !user_order_.empty(); ++i) {
    // Cycle through user-item pairs; the user stream is typically longer
    // than one epoch of group pairs so wrap-around keeps coverage uniform.
    const Interaction& pos = user_order_[user_cursor_ % user_order_.size()];
    ++user_cursor_;
    batch->user_instances.push_back(
        UserInstance{pos.row, pos.item, 1.0});
    batch->user_instances.push_back(UserInstance{
        pos.row, user_negatives_.Sample(pos.row, rng), 0.0});
  }
  return true;
}

}  // namespace kgag
