#include "data/batcher.h"

#include <istream>
#include <ostream>

#include "common/binary_io.h"

namespace kgag {

Batcher::Batcher(const GroupRecDataset* dataset, Options options)
    : dataset_(dataset),
      options_(options),
      group_negatives_(&dataset->group_item),
      user_negatives_(&dataset->user_item) {
  KGAG_CHECK(dataset != nullptr);
  KGAG_CHECK_GT(options_.group_batch_size, 0u);
  group_order_ = dataset_->split.train;
  user_order_ = dataset_->user_item.ToPairs();
}

void Batcher::RefreshFromDataset() {
  group_order_ = dataset_->split.train;
  user_order_ = dataset_->user_item.ToPairs();
  group_cursor_ = 0;
  user_cursor_ = 0;
  resume_pending_ = false;
}

void Batcher::BeginEpoch(Rng* rng) {
  if (resume_pending_) {
    // Restored mid-epoch: the orders and cursors already describe an epoch
    // in progress; reshuffling would desync the RNG stream from the
    // checkpointed trajectory.
    resume_pending_ = false;
    return;
  }
  if (options_.max_group_pairs_per_epoch > 0 &&
      group_order_.size() != dataset_->split.train.size()) {
    group_order_ = dataset_->split.train;  // re-draw from the full set
  }
  rng->Shuffle(&group_order_);
  if (options_.max_group_pairs_per_epoch > 0 &&
      group_order_.size() > options_.max_group_pairs_per_epoch) {
    group_order_.resize(options_.max_group_pairs_per_epoch);
  }
  rng->Shuffle(&user_order_);
  group_cursor_ = 0;
  user_cursor_ = 0;
}

size_t Batcher::BatchesPerEpoch() const {
  return (group_order_.size() + options_.group_batch_size - 1) /
         options_.group_batch_size;
}

bool Batcher::NextBatch(Rng* rng, MiniBatch* batch) {
  batch->group_triplets.clear();
  batch->user_instances.clear();
  batch->group_index_base = group_cursor_;
  batch->user_instance_base = user_cursor_ * 2;
  if (group_cursor_ >= group_order_.size()) return false;

  const size_t end =
      std::min(group_cursor_ + options_.group_batch_size, group_order_.size());
  for (; group_cursor_ < end; ++group_cursor_) {
    const Interaction& pos = group_order_[group_cursor_];
    GroupTriplet t;
    t.group = pos.row;
    t.positive = pos.item;
    t.negative = group_negatives_.Sample(pos.row, rng);
    batch->group_triplets.push_back(t);
  }

  const size_t user_pos = static_cast<size_t>(
      options_.user_ratio * static_cast<double>(batch->group_triplets.size()));
  for (size_t i = 0; i < user_pos && !user_order_.empty(); ++i) {
    // Cycle through user-item pairs; the user stream is typically longer
    // than one epoch of group pairs so wrap-around keeps coverage uniform.
    const Interaction& pos = user_order_[user_cursor_ % user_order_.size()];
    ++user_cursor_;
    batch->user_instances.push_back(
        UserInstance{pos.row, pos.item, 1.0});
    batch->user_instances.push_back(UserInstance{
        pos.row, user_negatives_.Sample(pos.row, rng), 0.0});
  }
  return true;
}

bool Batcher::NextBatch(const EpochStreams& streams, MiniBatch* batch) {
  batch->group_triplets.clear();
  batch->user_instances.clear();
  batch->group_index_base = group_cursor_;
  batch->user_instance_base = user_cursor_ * 2;
  if (group_cursor_ >= group_order_.size()) return false;

  const size_t end =
      std::min(group_cursor_ + options_.group_batch_size, group_order_.size());
  for (; group_cursor_ < end; ++group_cursor_) {
    const Interaction& pos = group_order_[group_cursor_];
    // One derived stream per example index: the rejection sampler may
    // draw any number of times without perturbing later examples.
    Rng ex_rng = streams.For(kGroupNegativeStream, group_cursor_);
    GroupTriplet t;
    t.group = pos.row;
    t.positive = pos.item;
    t.negative = group_negatives_.Sample(pos.row, &ex_rng);
    batch->group_triplets.push_back(t);
  }

  const size_t user_pos = static_cast<size_t>(
      options_.user_ratio * static_cast<double>(batch->group_triplets.size()));
  for (size_t i = 0; i < user_pos && !user_order_.empty(); ++i) {
    const Interaction& pos = user_order_[user_cursor_ % user_order_.size()];
    Rng ex_rng = streams.For(kUserNegativeStream, user_cursor_);
    ++user_cursor_;
    batch->user_instances.push_back(UserInstance{pos.row, pos.item, 1.0});
    batch->user_instances.push_back(UserInstance{
        pos.row, user_negatives_.Sample(pos.row, &ex_rng), 0.0});
  }
  return true;
}

Status Batcher::SaveState(std::ostream* out) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  bio::WritePodVector(out, group_order_);
  bio::WritePodVector(out, user_order_);
  bio::WriteU64(out, group_cursor_);
  bio::WriteU64(out, user_cursor_);
  if (!out->good()) return Status::IoError("batcher state write failed");
  return Status::OK();
}

Status Batcher::LoadState(std::istream* in, bool resume_mid_epoch) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::vector<Interaction> group_order, user_order;
  uint64_t group_cursor = 0, user_cursor = 0;
  if (!bio::ReadPodVector(in, &group_order) ||
      !bio::ReadPodVector(in, &user_order) ||
      !bio::ReadU64(in, &group_cursor) || !bio::ReadU64(in, &user_cursor)) {
    return Status::IoError("truncated batcher state");
  }
  if (group_order.size() > dataset_->split.train.size() ||
      user_order.size() != dataset_->user_item.ToPairs().size()) {
    return Status::InvalidArgument("batcher state size mismatch");
  }
  for (const Interaction& it : group_order) {
    if (it.row < 0 || it.row >= dataset_->group_item.num_rows() ||
        it.item < 0 || it.item >= dataset_->group_item.num_items()) {
      return Status::InvalidArgument("batcher state group pair out of range");
    }
  }
  for (const Interaction& it : user_order) {
    if (it.row < 0 || it.row >= dataset_->user_item.num_rows() ||
        it.item < 0 || it.item >= dataset_->user_item.num_items()) {
      return Status::InvalidArgument("batcher state user pair out of range");
    }
  }
  if (group_cursor > group_order.size()) {
    return Status::InvalidArgument("batcher state cursor out of range");
  }
  group_order_ = std::move(group_order);
  user_order_ = std::move(user_order);
  group_cursor_ = static_cast<size_t>(group_cursor);
  user_cursor_ = static_cast<size_t>(user_cursor);
  resume_pending_ = resume_mid_epoch;
  return Status::OK();
}

}  // namespace kgag
