// Mini-batch construction (§III-E): each batch mixes group-item ranking
// triplets (g, v_p, v_n) with user-item log-loss instances (u, v, y),
// since the combined loss of Eq. 20 trains on both signals.
#ifndef KGAG_DATA_BATCHER_H_
#define KGAG_DATA_BATCHER_H_

#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/negative_sampler.h"

namespace kgag {

/// \brief One group ranking instance: positive vs sampled negative item.
struct GroupTriplet {
  GroupId group = -1;
  ItemId positive = -1;
  ItemId negative = -1;
};

/// \brief One user-item classification instance (label 1 = observed).
struct UserInstance {
  UserId user = -1;
  ItemId item = -1;
  double label = 0.0;
};

/// \brief A mini-batch over both interaction kinds.
struct MiniBatch {
  std::vector<GroupTriplet> group_triplets;
  std::vector<UserInstance> user_instances;

  /// Epoch-global index of group_triplets[0] (its position in the
  /// shuffled group order). Training derives each example's RNG stream
  /// from `group_index_base + i`, so randomness is addressable per
  /// example rather than tied to consumption order.
  uint64_t group_index_base = 0;
  /// Epoch-global index of user_instances[0]; positives and their
  /// negatives count separately (two instances per positive pair).
  uint64_t user_instance_base = 0;

  size_t size() const {
    return group_triplets.size() + user_instances.size();
  }
};

/// Stream ids for counter-based RNG derivation (see EpochStreams). Each
/// stochastic consumer of a training example owns one constant so their
/// draws never alias.
inline constexpr uint64_t kGroupNegativeStream = 0xB1;
inline constexpr uint64_t kUserNegativeStream = 0xB2;

/// \brief Shuffles training interactions each epoch and emits mini-batches.
class Batcher {
 public:
  struct Options {
    size_t group_batch_size = 32;
    /// User-item instances per batch = user_ratio * group_batch_size
    /// positive pairs, each paired with one sampled negative (label 0).
    double user_ratio = 1.0;
    /// Caps the group-item pairs visited per epoch (0 = all). A fresh
    /// random subset is drawn each epoch, so coverage is uniform across
    /// epochs; used to keep epoch cost independent of corpus density.
    size_t max_group_pairs_per_epoch = 0;
  };

  /// \param dataset must outlive the batcher
  Batcher(const GroupRecDataset* dataset, Options options);

  /// Starts a new epoch: reshuffles the training orders.
  void BeginEpoch(Rng* rng);

  /// Re-derives both training orders from the dataset's CURRENT
  /// interactions and resets the cursors — the online fine-tuning hook
  /// (DESIGN.md §15): interactions appended to the dataset after
  /// construction become visible to the next BeginEpoch. Abandons any
  /// epoch in progress; never call between NextBatch calls of one epoch.
  void RefreshFromDataset();

  /// Fills the next batch; returns false when the epoch is exhausted
  /// (group interactions drive epoch length). Negatives are drawn from
  /// the shared sequential engine; prefer the EpochStreams overload for
  /// thread-count-independent training.
  bool NextBatch(Rng* rng, MiniBatch* batch);

  /// Stream-addressed variant: the negative for the example at
  /// epoch-global index i is drawn from its own counter-based stream
  /// (kGroupNegativeStream/kUserNegativeStream, index i), so the batch
  /// content is a pure function of (seed, epoch, cursor) — independent
  /// of how many threads later process it and of how many rejection
  /// draws earlier examples consumed. Also fills the batch index bases.
  bool NextBatch(const EpochStreams& streams, MiniBatch* batch);

  size_t BatchesPerEpoch() const;

  /// Serializes the shuffled orders and cursors. The orders matter even at
  /// epoch boundaries: BeginEpoch reshuffles the *current* permutation in
  /// place, so a resumed run must start from the same permutation to stay
  /// bit-identical with an uninterrupted one.
  Status SaveState(std::ostream* out) const;

  /// Restores a SaveState snapshot, validating every interaction against
  /// the dataset. With `resume_mid_epoch` set, the next BeginEpoch is a
  /// no-op (no reshuffle, cursors kept) so NextBatch continues exactly
  /// where the checkpointed epoch stopped.
  Status LoadState(std::istream* in, bool resume_mid_epoch);

 private:
  const GroupRecDataset* dataset_;
  Options options_;
  NegativeSampler group_negatives_;
  NegativeSampler user_negatives_;
  std::vector<Interaction> group_order_;
  std::vector<Interaction> user_order_;
  size_t group_cursor_ = 0;
  size_t user_cursor_ = 0;
  bool resume_pending_ = false;
};

}  // namespace kgag

#endif  // KGAG_DATA_BATCHER_H_
