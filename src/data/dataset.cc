#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace kgag {

DatasetStats GroupRecDataset::Stats() const {
  DatasetStats s;
  s.name = name;
  s.total_groups = groups.num_groups();
  s.total_items = num_items;
  s.total_users = num_users;
  s.group_size = group_size;
  s.group_interactions = static_cast<int64_t>(group_item.num_interactions());
  s.interactions_per_group = group_item.MeanRowDegree();
  s.kg_entities = num_entities;
  s.kg_relations = num_relations;
  s.kg_triples = static_cast<int64_t>(kg_triples.size());
  return s;
}

std::vector<ItemId> GroupRecDataset::TestItemPool() const {
  std::unordered_set<ItemId> pool;
  for (const Interaction& it : split.test) pool.insert(it.item);
  std::vector<ItemId> out(pool.begin(), pool.end());
  std::sort(out.begin(), out.end());
  return out;
}

Status GroupRecDataset::Validate() const {
  if (num_users <= 0 || num_items <= 0) {
    return Status::InvalidArgument("dataset has no users or items");
  }
  if (static_cast<int32_t>(item_to_entity.size()) != num_items) {
    return Status::InvalidArgument("item_to_entity size != num_items");
  }
  for (EntityId e : item_to_entity) {
    if (e < 0 || e >= num_entities) {
      return Status::OutOfRange("item_to_entity id out of range");
    }
  }
  for (const Triple& t : kg_triples) {
    if (t.head < 0 || t.head >= num_entities || t.tail < 0 ||
        t.tail >= num_entities || t.relation < 0 ||
        t.relation >= num_relations) {
      return Status::OutOfRange("kg triple out of range");
    }
  }
  for (GroupId g = 0; g < groups.num_groups(); ++g) {
    if (static_cast<int32_t>(groups.GroupSize(g)) != group_size) {
      return Status::InvalidArgument("group with non-uniform size");
    }
    for (UserId u : groups.MembersOf(g)) {
      if (u < 0 || u >= num_users) {
        return Status::OutOfRange("group member out of range");
      }
    }
  }
  const size_t total =
      split.train.size() + split.valid.size() + split.test.size();
  if (total != group_item.num_interactions()) {
    return Status::Internal("split does not partition group interactions");
  }
  return Status::OK();
}

InteractionMatrix SubsampleInteractions(const InteractionMatrix& m,
                                        double keep_fraction, Rng* rng) {
  std::vector<Interaction> kept;
  for (const Interaction& it : m.ToPairs()) {
    if (rng->Bernoulli(keep_fraction)) kept.push_back(it);
  }
  return InteractionMatrix::FromPairs(m.num_rows(), m.num_items(),
                                      std::move(kept));
}

GroupSplit SplitInteractions(const InteractionMatrix& group_item, Rng* rng,
                             double train_frac, double valid_frac) {
  std::vector<Interaction> all = group_item.ToPairs();
  rng->Shuffle(&all);
  const size_t n = all.size();
  const size_t n_train = static_cast<size_t>(n * train_frac);
  const size_t n_valid = static_cast<size_t>(n * valid_frac);
  GroupSplit split;
  split.train.assign(all.begin(), all.begin() + n_train);
  split.valid.assign(all.begin() + n_train, all.begin() + n_train + n_valid);
  split.test.assign(all.begin() + n_train + n_valid, all.end());
  return split;
}

}  // namespace kgag
