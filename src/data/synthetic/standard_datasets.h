// One-call constructors for the three experiment corpora of §IV-B:
// MovieLens-20M-Rand, MovieLens-20M-Simi (both derived from the same
// synthetic MovieLens world, like the paper derives both from
// MovieLens-20M) and Yelp. `scale` shrinks/grows every count
// proportionally so tests can run on tiny corpora and benches on larger
// ones with identical structure.
#ifndef KGAG_DATA_SYNTHETIC_STANDARD_DATASETS_H_
#define KGAG_DATA_SYNTHETIC_STANDARD_DATASETS_H_

#include "data/dataset.h"
#include "data/synthetic/movielens_gen.h"
#include "data/synthetic/yelp_gen.h"

namespace kgag {

/// MovieLens-like configs scaled by `scale` (1.0 = bench default:
/// 600 users, 400 movies).
MovieLensConfig ScaledMovieLensConfig(double scale);
YelpConfig ScaledYelpConfig(double scale);

/// Random-member groups of size 8 over the MovieLens world.
GroupRecDataset MakeMovieLensRandDataset(uint64_t seed, double scale = 1.0);

/// PCC>=0.27-constrained groups of size 5 over the MovieLens world.
GroupRecDataset MakeMovieLensSimiDataset(uint64_t seed, double scale = 1.0);

/// Friend-triangle groups of size 3 over the Yelp world.
GroupRecDataset MakeYelpDataset(uint64_t seed, double scale = 1.0);

/// Builds from an existing world + group parameters (shared by the two
/// MovieLens variants; exposed for tests).
GroupRecDataset AssembleMovieLensDataset(const MovieLensWorld& world,
                                         bool similar_groups, int group_size,
                                         int num_groups, uint64_t seed,
                                         const std::string& name);

}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_STANDARD_DATASETS_H_
