// Group construction following the protocol of §IV-B (after Baltrunas et
// al. [4]): groups are assembled around an anchor item every member rated
// >= 4; Rand groups place no similarity constraint on members, Simi groups
// additionally require pairwise Pearson correlation >= 0.27 between all
// members. A group's positive items are the items every member rated >= 4.
#ifndef KGAG_DATA_SYNTHETIC_GROUP_BUILDER_H_
#define KGAG_DATA_SYNTHETIC_GROUP_BUILDER_H_

#include "common/rng.h"
#include "data/interactions.h"
#include "data/synthetic/ratings.h"

namespace kgag {

/// \brief Groups plus their derived group-item interactions (Y^G).
struct GroupBuildResult {
  GroupTable groups;
  InteractionMatrix group_item;
};

struct GroupBuilderConfig {
  int group_size = 8;
  int num_groups = 1000;
  /// Pairwise PCC floor for similarity-constrained groups; the paper uses
  /// 0.27 (after [4]). Ignored by BuildRandomGroups.
  double pcc_threshold = 0.27;
  /// Group decision rule: an item is a group positive iff every member
  /// rated it, no member rated below veto_threshold (misery floor), and
  /// the *influence-weighted* mean rating reaches mean_threshold, where a
  /// member's influence grows with their own enthusiasm:
  /// w_i ∝ exp(enthusiasm_lambda · (r_i − 3)). This is the decision
  /// process the paper itself postulates (§III-D: "the more interested a
  /// user is in the candidate item, the more consistent she will be in
  /// group decision making"; §IV-H: "a few people influence group
  /// decision making and others just follow"). enthusiasm_lambda = 0
  /// degenerates to plain average satisfaction; see DESIGN.md §4 for why
  /// this replaces the strict all->=4 conjunction.
  double mean_threshold = 4.15;
  uint8_t veto_threshold = 3;
  double enthusiasm_lambda = 1.75;
  /// Member-pool rating floor used when assembling groups around anchor
  /// items (a group forms around an item its members all like).
  uint8_t like_threshold = 4;
  /// Give up assembling a group after this many candidate rejections.
  int max_attempts_per_group = 4000;
  /// Number of anchor items whose likers are intersected to form the
  /// member pool of a random group. 1 reproduces the single co-rated
  /// movie construction; 2 mimics crowds gathered around a couple of
  /// shared movies (mildly correlated tastes, still far below the Simi
  /// PCC floor).
  int num_anchor_items = 1;
};

/// Random groups: anchor item, then `group_size` distinct users uniformly
/// sampled from the anchor's likers. May return fewer groups than
/// requested if the corpus cannot support them.
GroupBuildResult BuildRandomGroups(const RatingTable& ratings,
                                   const GroupBuilderConfig& config, Rng* rng);

/// Similarity-constrained groups: like BuildRandomGroups but every added
/// member must have PCC >= pcc_threshold with all current members.
GroupBuildResult BuildSimilarGroups(const RatingTable& ratings,
                                    const GroupBuilderConfig& config,
                                    Rng* rng);

/// Items satisfying the group decision rule: co-rated by every member,
/// no rating below veto_threshold, and enthusiasm-weighted mean rating
/// >= mean_threshold.
std::vector<ItemId> GroupPositives(const RatingTable& ratings,
                                   std::span<const UserId> members,
                                   double mean_threshold,
                                   uint8_t veto_threshold,
                                   double enthusiasm_lambda);

/// Mean pairwise PCC over all member pairs of all groups (diagnostic used
/// to verify the Rand-vs-Simi contrast).
double MeanIntraGroupPcc(const RatingTable& ratings, const GroupTable& groups);

}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_GROUP_BUILDER_H_
