#include "data/synthetic/standard_datasets.h"

#include <algorithm>
#include <cmath>

#include "data/synthetic/group_builder.h"

namespace kgag {

namespace {
int32_t ScaleCount(int32_t base, double scale, int32_t min_value) {
  return std::max(min_value,
                  static_cast<int32_t>(std::lround(base * scale)));
}
}  // namespace

MovieLensConfig ScaledMovieLensConfig(double scale) {
  MovieLensConfig cfg;
  cfg.num_users = ScaleCount(cfg.num_users, scale, 40);
  cfg.num_movies = ScaleCount(cfg.num_movies, scale, 30);
  cfg.num_directors = ScaleCount(cfg.num_directors, scale, 8);
  cfg.num_actors = ScaleCount(cfg.num_actors, scale, 20);
  cfg.num_genres = ScaleCount(cfg.num_genres, std::sqrt(scale), 6);
  cfg.num_years = ScaleCount(cfg.num_years, std::sqrt(scale), 10);
  cfg.num_studios = ScaleCount(cfg.num_studios, scale, 5);
  cfg.num_countries = ScaleCount(cfg.num_countries, std::sqrt(scale), 5);
  cfg.num_languages = ScaleCount(cfg.num_languages, std::sqrt(scale), 4);
  cfg.num_series = ScaleCount(cfg.num_series, scale, 5);
  return cfg;
}

YelpConfig ScaledYelpConfig(double scale) {
  YelpConfig cfg;
  cfg.num_users = ScaleCount(cfg.num_users, scale, 40);
  cfg.num_businesses = ScaleCount(cfg.num_businesses, scale, 25);
  cfg.num_communities = ScaleCount(cfg.num_communities, std::sqrt(scale), 4);
  cfg.num_cities = ScaleCount(cfg.num_cities, std::sqrt(scale), 3);
  cfg.num_neighborhoods =
      ScaleCount(cfg.num_neighborhoods, std::sqrt(scale), 6);
  cfg.num_categories = ScaleCount(cfg.num_categories, std::sqrt(scale), 6);
  cfg.num_groups = ScaleCount(cfg.num_groups, scale, 30);
  return cfg;
}

GroupRecDataset AssembleMovieLensDataset(const MovieLensWorld& world,
                                         bool similar_groups, int group_size,
                                         int num_groups, uint64_t seed,
                                         const std::string& name) {
  Rng rng(seed);
  GroupBuilderConfig gcfg;
  gcfg.group_size = group_size;
  gcfg.num_groups = num_groups;
  gcfg.num_anchor_items = 2;
  // The paper's PCC floor of 0.27 was binding on MovieLens-20M raters; in
  // this synthetic world quality-driven agreement already puts random
  // co-liker pairs around 0.6, so the binding equivalent of "similar
  // members" is a higher floor (DESIGN.md §4).
  gcfg.pcc_threshold = 0.70;
  GroupBuildResult built = similar_groups
                               ? BuildSimilarGroups(world.ratings, gcfg, &rng)
                               : BuildRandomGroups(world.ratings, gcfg, &rng);

  GroupRecDataset ds;
  ds.name = name;
  ds.num_users = world.num_users;
  ds.num_items = world.num_items;
  ds.kg_triples = world.kg_triples;
  ds.num_entities = world.num_entities;
  ds.num_relations = world.num_relations;
  ds.relation_names = world.relation_names;
  ds.item_to_entity = world.item_to_entity;
  // Only a behavioral subset of "liked" pairs is observed as implicit
  // feedback; the rest must be inferred (the sparsity problem of §I).
  Rng obs_rng(seed + 1000);
  ds.user_item = SubsampleInteractions(
      world.ratings.ToImplicit(/*threshold=*/4), 0.22, &obs_rng);
  ds.groups = std::move(built.groups);
  ds.group_item = std::move(built.group_item);
  ds.group_size = group_size;
  Rng split_rng = rng.Fork();
  ds.split = SplitInteractions(ds.group_item, &split_rng);
  return ds;
}

GroupRecDataset MakeMovieLensRandDataset(uint64_t seed, double scale) {
  Rng rng(seed);
  MovieLensWorld world = GenerateMovieLensWorld(ScaledMovieLensConfig(scale),
                                                &rng);
  const int num_groups = ScaleCount(1200, scale, 40);
  return AssembleMovieLensDataset(world, /*similar_groups=*/false,
                                  /*group_size=*/8, num_groups, seed + 1,
                                  "MovieLens-20M-Rand (synthetic)");
}

GroupRecDataset MakeMovieLensSimiDataset(uint64_t seed, double scale) {
  Rng rng(seed);
  MovieLensWorld world = GenerateMovieLensWorld(ScaledMovieLensConfig(scale),
                                                &rng);
  const int num_groups = ScaleCount(800, scale, 30);
  return AssembleMovieLensDataset(world, /*similar_groups=*/true,
                                  /*group_size=*/5, num_groups, seed + 2,
                                  "MovieLens-20M-Simi (synthetic)");
}

GroupRecDataset MakeYelpDataset(uint64_t seed, double scale) {
  Rng rng(seed);
  YelpWorld world = GenerateYelpWorld(ScaledYelpConfig(scale), &rng);

  GroupRecDataset ds;
  ds.name = "Yelp (synthetic)";
  ds.num_users = world.num_users;
  ds.num_items = world.num_items;
  ds.kg_triples = world.kg_triples;
  ds.num_entities = world.num_entities;
  ds.num_relations = world.num_relations;
  ds.relation_names = world.relation_names;
  ds.item_to_entity = world.item_to_entity;
  ds.user_item = world.visits;
  ds.groups = world.groups;
  ds.group_item = world.group_item;
  ds.group_size = 3;
  Rng split_rng = rng.Fork();
  ds.split = SplitInteractions(ds.group_item, &split_rng);
  return ds;
}

}  // namespace kgag
