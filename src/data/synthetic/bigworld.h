// Million-entity synthetic world for serving-scale benchmarks (DESIGN.md
// §14). The trained-model tiers (MovieLens/Yelp-shaped generators) top
// out at thousands of entities because training at full fidelity bounds
// them; serving benchmarks need the opposite trade — rep tables and a KG
// at production scale (1M+ users, 100K+ items/groups) with no training
// loop at all.
//
// BigWorldGen is therefore COUNTER-BASED: every value it can produce —
// user/item rep rows, attention weights, group memberships, KG triples —
// is a pure function of (seed, stream, index, column) via
// DeriveStreamSeed/SplitMix64. Nothing is materialized: callers ask for
// any row range in any chunk granularity and always get the same bytes,
// which is what lets freeze_model stream a 1M-user artifact through a
// fixed-size buffer, lets two processes agree on the world without
// sharing memory, and makes every big-world benchmark reproducible from
// the spec alone.
#ifndef KGAG_DATA_SYNTHETIC_BIGWORLD_H_
#define KGAG_DATA_SYNTHETIC_BIGWORLD_H_

#include <cstdint>
#include <vector>

#include "data/interactions.h"
#include "kg/triple.h"

namespace kgag {
namespace synthetic {

/// \brief Scale + seed of a synthetic serving world. Everything else
/// derives deterministically.
struct BigWorldSpec {
  uint64_t num_users = 1'000'000;
  uint64_t num_items = 100'000;
  uint64_t num_groups = 100'000;
  uint32_t dim = 64;
  uint32_t group_size = 5;

  // KG shape: each item links to attribute entities (genre/tag-like
  // nodes) through a small relation vocabulary, mirroring the CKG the
  // paper builds from item metadata.
  uint64_t num_kg_attrs = 50'000;
  uint32_t num_kg_relations = 12;
  uint32_t kg_triples_per_item = 8;

  uint64_t seed = 20210415;  ///< world identity; same spec = same world

  uint64_t NumKgTriples() const { return num_items * kg_triples_per_item; }
  uint64_t NumKgEntities() const { return num_items + num_kg_attrs; }
};

/// \brief Stateless generator over a BigWorldSpec (cheap to copy; safe to
/// use from any number of threads/processes concurrently).
class BigWorldGen {
 public:
  explicit BigWorldGen(const BigWorldSpec& spec);

  const BigWorldSpec& spec() const { return spec_; }

  /// Rows [start, start+count) of the user rep table into out[0 ..
  /// count*dim). Chunk-invariant: any split over `start` yields identical
  /// bytes.
  void UserRows(uint64_t start, uint64_t count, double* out) const;
  /// Item-table counterpart.
  void ItemRows(uint64_t start, uint64_t count, double* out) const;

  /// Attention weights at the spec's dim/group_size, row-major into
  /// caller buffers: w1 (dim x dim), w2 (dim*(group_size-1) x dim),
  /// bias (1 x dim), vc (dim x 1). Any pointer may be null to skip.
  void Attention(double* w1, double* w2, double* bias, double* vc) const;

  /// Group g's members: group_size distinct user ids, sorted (the
  /// canonical form BuildGroupRep produces). Deterministic per (spec, g).
  std::vector<UserId> GroupMembers(uint64_t g) const;

  /// Triples [start, start+count) of the KG into out. Each item emits
  /// kg_triples_per_item facts (head = item entity, tail = attribute
  /// entity at id >= num_items). Chunk-invariant like the row API.
  void KgTriples(uint64_t start, uint64_t count, Triple* out) const;

 private:
  void FillRows(uint64_t stream, uint64_t start, uint64_t count,
                uint64_t cols, double scale, double* out) const;

  BigWorldSpec spec_;
  double rep_scale_ = 0;  ///< 1/sqrt(dim), the rep value range
};

}  // namespace synthetic
}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_BIGWORLD_H_
