// Synthetic MovieLens-20M-like world: a dense explicit-rating corpus plus a
// Satori-like movie knowledge graph whose attributes *cause* the rating
// structure — users are genre-anchored and movies inherit their latent
// position from their KG attributes, so KG connectivity genuinely carries
// preference signal (the property the paper's experiments depend on).
//
// Substitution note (see DESIGN.md §4): the real paper used MovieLens-20M
// linked against a Microsoft Satori slice, which is not redistributable;
// this generator reproduces the causal structure at laptop scale.
#ifndef KGAG_DATA_SYNTHETIC_MOVIELENS_GEN_H_
#define KGAG_DATA_SYNTHETIC_MOVIELENS_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/synthetic/ratings.h"
#include "kg/triple.h"

namespace kgag {

/// \brief Knobs of the MovieLens-like generator.
struct MovieLensConfig {
  int32_t num_users = 400;
  int32_t num_movies = 500;

  // Knowledge-graph vocabulary sizes.
  int32_t num_directors = 60;
  int32_t num_actors = 240;
  int32_t num_genres = 14;
  int32_t num_years = 30;
  int32_t num_studios = 25;
  int32_t num_countries = 12;
  int32_t num_languages = 8;
  int32_t num_series = 20;

  // Attribute multiplicities per movie.
  int min_genres = 1, max_genres = 3;
  int num_actors_per_movie = 3;
  double series_probability = 0.25;

  // Latent rating model. Defaults are calibrated so that personal taste
  // (the KG-derived latent match) dominates universal quality: otherwise
  // a popularity ranker saturates the group task and no model separation
  // is visible.
  int latent_dim = 8;
  double rating_base = 3.2;      ///< intercept of the affinity model
  double quality_weight = 0.8;  ///< weight of the per-movie quality term
  double affinity_weight = 1.5;  ///< weight of ⟨user, movie⟩ taste match
  double rating_noise = 0.35;     ///< stddev of per-rating noise

  // Quality is bimodal: a broad class of good movies and a long tail of
  // mediocre ones. This spreads group positives over many distinct items
  // (instead of a handful of blockbusters), so ranking *within* the good
  // class requires taste — which is where the knowledge graph carries
  // signal.
  double good_movie_fraction = 0.3;
  double good_quality_mean = 1.1, good_quality_std = 0.35;
  double bad_quality_mean = -0.5, bad_quality_std = 0.6;

  // Observation process: fraction of the catalogue each user rates.
  double min_rating_density = 0.45;
  double max_rating_density = 0.75;
  /// Popularity skew of which movies get rated (Zipf exponent).
  double popularity_alpha = 0.3;
  /// Noise when deriving popularity rank from quality (higher = weaker
  /// quality-popularity coupling).
  double popularity_noise = 1.0;
};

/// \brief Relation ids of the generated movie KG.
enum MovieRelation : RelationId {
  kDirectedBy = 0,
  kStarring = 1,
  kHasGenre = 2,
  kReleasedIn = 3,
  kProducedBy = 4,
  kFromCountry = 5,
  kInLanguage = 6,
  kPartOfSeries = 7,
  kNumMovieRelations = 8,
};

/// \brief Generator output: ratings + the movie knowledge graph.
struct MovieLensWorld {
  int32_t num_users = 0;
  int32_t num_items = 0;

  RatingTable ratings;

  std::vector<Triple> kg_triples;
  int32_t num_entities = 0;
  int32_t num_relations = kNumMovieRelations;
  std::vector<std::string> relation_names;
  /// f: movie id -> entity id (movies occupy entity ids [0, num_items)).
  std::vector<EntityId> item_to_entity;

  /// Ground-truth latents, exposed for analysis/tests (not visible to
  /// models).
  std::vector<std::vector<double>> user_latents;
  std::vector<std::vector<double>> movie_latents;
  std::vector<double> movie_quality;
};

/// Generates a world deterministically from the rng state.
MovieLensWorld GenerateMovieLensWorld(const MovieLensConfig& config, Rng* rng);

}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_MOVIELENS_GEN_H_
