#include "data/synthetic/bigworld.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace kgag {
namespace synthetic {

namespace {

// Stream ids namespacing the world's consumers (arbitrary distinct
// constants; changing one changes the world, so they are frozen).
constexpr uint64_t kStreamUserRep = 0x42577275ULL;   // 'BWru'
constexpr uint64_t kStreamItemRep = 0x42577269ULL;   // 'BWri'
constexpr uint64_t kStreamAttnW1 = 0x42576131ULL;    // 'BWa1'
constexpr uint64_t kStreamAttnW2 = 0x42576132ULL;    // 'BWa2'
constexpr uint64_t kStreamAttnBias = 0x42576162ULL;  // 'BWab'
constexpr uint64_t kStreamAttnVc = 0x42576176ULL;    // 'BWav'
constexpr uint64_t kStreamGroups = 0x42576772ULL;    // 'BWgr'
constexpr uint64_t kStreamKg = 0x42576b67ULL;        // 'BWkg'

/// Column-addressable uniform in [-scale, scale): value (r, c) of a
/// stream depends only on the row's derived seed and the column index,
/// so any chunking of rows — and even per-column access — agrees.
inline double ValueAt(uint64_t row_seed, uint64_t c, double scale) {
  const uint64_t x = SplitMix64(row_seed ^ (c * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return (2.0 * u - 1.0) * scale;
}

}  // namespace

BigWorldGen::BigWorldGen(const BigWorldSpec& spec) : spec_(spec) {
  KGAG_CHECK(spec_.dim > 0) << "big world needs a positive dim";
  KGAG_CHECK(spec_.group_size > 0) << "big world needs a positive group size";
  KGAG_CHECK(spec_.group_size <= spec_.num_users)
      << "group size exceeds user count";
  rep_scale_ = 1.0 / std::sqrt(static_cast<double>(spec_.dim));
}

void BigWorldGen::FillRows(uint64_t stream, uint64_t start, uint64_t count,
                           uint64_t cols, double scale, double* out) const {
  for (uint64_t r = 0; r < count; ++r) {
    const uint64_t row_seed =
        DeriveStreamSeed(spec_.seed, /*epoch=*/0, stream, start + r);
    double* row = out + r * cols;
    for (uint64_t c = 0; c < cols; ++c) row[c] = ValueAt(row_seed, c, scale);
  }
}

void BigWorldGen::UserRows(uint64_t start, uint64_t count, double* out) const {
  KGAG_CHECK(start + count <= spec_.num_users);
  FillRows(kStreamUserRep, start, count, spec_.dim, rep_scale_, out);
}

void BigWorldGen::ItemRows(uint64_t start, uint64_t count, double* out) const {
  KGAG_CHECK(start + count <= spec_.num_items);
  FillRows(kStreamItemRep, start, count, spec_.dim, rep_scale_, out);
}

void BigWorldGen::Attention(double* w1, double* w2, double* bias,
                            double* vc) const {
  const uint64_t d = spec_.dim;
  // Xavier-ish range for the dim x dim map keeps the pre-activation in a
  // plausible band so ReLU neither saturates to all-zero nor explodes.
  const double attn_scale = 1.0 / static_cast<double>(d);
  if (w1 != nullptr) FillRows(kStreamAttnW1, 0, d, d, attn_scale, w1);
  if (w2 != nullptr) {
    FillRows(kStreamAttnW2, 0, d * (spec_.group_size - 1), d, attn_scale, w2);
  }
  if (bias != nullptr) FillRows(kStreamAttnBias, 0, 1, d, attn_scale, bias);
  if (vc != nullptr) FillRows(kStreamAttnVc, 0, d, 1, attn_scale, vc);
}

std::vector<UserId> BigWorldGen::GroupMembers(uint64_t g) const {
  Rng rng(DeriveStreamSeed(spec_.seed, /*epoch=*/0, kStreamGroups, g));
  std::vector<UserId> members;
  members.reserve(spec_.group_size);
  // Rejection sampling: group_size is tiny relative to num_users, so
  // collisions are rare and the loop terminates fast.
  while (members.size() < spec_.group_size) {
    const UserId u = static_cast<UserId>(
        rng.UniformInt(0, static_cast<int64_t>(spec_.num_users) - 1));
    if (std::find(members.begin(), members.end(), u) == members.end()) {
      members.push_back(u);
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

void BigWorldGen::KgTriples(uint64_t start, uint64_t count,
                            Triple* out) const {
  KGAG_CHECK(start + count <= spec_.NumKgTriples());
  const uint64_t per_item = spec_.kg_triples_per_item;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t t = start + i;
    Rng rng(DeriveStreamSeed(spec_.seed, /*epoch=*/0, kStreamKg, t));
    Triple& triple = out[i];
    triple.head = static_cast<EntityId>(t / per_item);
    triple.relation = static_cast<RelationId>(
        rng.UniformInt(0, static_cast<int64_t>(spec_.num_kg_relations) - 1));
    triple.tail = static_cast<EntityId>(
        spec_.num_items +
        static_cast<uint64_t>(
            rng.UniformInt(0, static_cast<int64_t>(spec_.num_kg_attrs) - 1)));
  }
}

}  // namespace synthetic
}  // namespace kgag
