#include "data/synthetic/group_builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace kgag {

namespace {

/// Users who rated item v >= threshold, per item (inverted index).
std::vector<std::vector<UserId>> BuildLikerIndex(const RatingTable& ratings,
                                                 uint8_t threshold) {
  std::vector<std::vector<UserId>> likers(ratings.num_items());
  for (UserId u = 0; u < ratings.num_users(); ++u) {
    for (ItemId v = 0; v < ratings.num_items(); ++v) {
      const uint8_t r = ratings.Get(u, v);
      if (r != 0 && r >= threshold) likers[v].push_back(u);
    }
  }
  return likers;
}

GroupBuildResult Finalize(const RatingTable& ratings,
                          const GroupBuilderConfig& cfg,
                          std::vector<std::vector<UserId>> member_lists) {
  GroupTable groups(std::move(member_lists));
  std::vector<Interaction> pairs;
  for (GroupId g = 0; g < groups.num_groups(); ++g) {
    for (ItemId v :
         GroupPositives(ratings, groups.MembersOf(g), cfg.mean_threshold,
                        cfg.veto_threshold, cfg.enthusiasm_lambda)) {
      pairs.push_back(Interaction{g, v});
    }
  }
  GroupBuildResult result;
  result.group_item = InteractionMatrix::FromPairs(
      groups.num_groups(), ratings.num_items(), std::move(pairs));
  result.groups = std::move(groups);
  return result;
}

}  // namespace

std::vector<ItemId> GroupPositives(const RatingTable& ratings,
                                   std::span<const UserId> members,
                                   double mean_threshold,
                                   uint8_t veto_threshold,
                                   double enthusiasm_lambda) {
  std::vector<ItemId> out;
  for (ItemId v = 0; v < ratings.num_items(); ++v) {
    bool ok = true;
    double weighted_sum = 0;
    double weight_total = 0;
    for (UserId u : members) {
      const uint8_t r = ratings.Get(u, v);
      if (r == 0 || r < veto_threshold) {
        ok = false;
        break;
      }
      const double w = std::exp(enthusiasm_lambda * (r - 3.0));
      weighted_sum += w * r;
      weight_total += w;
    }
    if (ok && weighted_sum >= mean_threshold * weight_total) {
      out.push_back(v);
    }
  }
  return out;
}

GroupBuildResult BuildRandomGroups(const RatingTable& ratings,
                                   const GroupBuilderConfig& cfg, Rng* rng) {
  KGAG_CHECK_GT(cfg.group_size, 0);
  KGAG_CHECK_GE(cfg.num_anchor_items, 1);
  const auto likers = BuildLikerIndex(ratings, cfg.like_threshold);
  std::vector<std::vector<UserId>> member_lists;
  member_lists.reserve(cfg.num_groups);
  int attempts = 0;
  const int max_total = cfg.num_groups * 50;
  while (static_cast<int>(member_lists.size()) < cfg.num_groups &&
         attempts < max_total) {
    ++attempts;
    // Intersect the likers of num_anchor_items anchors.
    std::vector<UserId> pool =
        likers[static_cast<size_t>(rng->UniformInt(0, ratings.num_items() - 1))];
    for (int a = 1; a < cfg.num_anchor_items && !pool.empty(); ++a) {
      const auto& other = likers[static_cast<size_t>(
          rng->UniformInt(0, ratings.num_items() - 1))];
      std::vector<UserId> merged;
      std::set_intersection(pool.begin(), pool.end(), other.begin(),
                            other.end(), std::back_inserter(merged));
      pool = std::move(merged);
    }
    if (static_cast<int>(pool.size()) < cfg.group_size) continue;
    std::vector<size_t> idx = rng->SampleWithoutReplacement(
        pool.size(), static_cast<size_t>(cfg.group_size));
    std::vector<UserId> members;
    members.reserve(cfg.group_size);
    for (size_t i : idx) members.push_back(pool[i]);
    std::sort(members.begin(), members.end());
    member_lists.push_back(std::move(members));
  }
  return Finalize(ratings, cfg, std::move(member_lists));
}

GroupBuildResult BuildSimilarGroups(const RatingTable& ratings,
                                    const GroupBuilderConfig& cfg, Rng* rng) {
  KGAG_CHECK_GT(cfg.group_size, 0);
  const auto likers = BuildLikerIndex(ratings, cfg.like_threshold);
  std::vector<std::vector<UserId>> member_lists;
  member_lists.reserve(cfg.num_groups);
  int outer_attempts = 0;
  const int max_outer = cfg.num_groups * 60;
  while (static_cast<int>(member_lists.size()) < cfg.num_groups &&
         outer_attempts < max_outer) {
    ++outer_attempts;
    const ItemId anchor =
        static_cast<ItemId>(rng->UniformInt(0, ratings.num_items() - 1));
    const auto& pool = likers[anchor];
    if (static_cast<int>(pool.size()) < cfg.group_size) continue;

    // Greedy assembly: random seed, then accept candidates that clear the
    // PCC floor against every current member.
    std::vector<UserId> members{
        pool[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(pool.size()) - 1))]};
    int inner = 0;
    while (static_cast<int>(members.size()) < cfg.group_size &&
           inner < cfg.max_attempts_per_group) {
      ++inner;
      const UserId cand = pool[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
      if (std::find(members.begin(), members.end(), cand) != members.end()) {
        continue;
      }
      bool ok = true;
      for (UserId m : members) {
        if (PearsonCorrelation(ratings, m, cand) < cfg.pcc_threshold) {
          ok = false;
          break;
        }
      }
      if (ok) members.push_back(cand);
    }
    if (static_cast<int>(members.size()) == cfg.group_size) {
      std::sort(members.begin(), members.end());
      member_lists.push_back(std::move(members));
    }
  }
  return Finalize(ratings, cfg, std::move(member_lists));
}

double MeanIntraGroupPcc(const RatingTable& ratings,
                         const GroupTable& groups) {
  double sum = 0.0;
  int64_t n = 0;
  for (GroupId g = 0; g < groups.num_groups(); ++g) {
    const auto members = groups.MembersOf(g);
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        sum += PearsonCorrelation(ratings, members[i], members[j]);
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace kgag
