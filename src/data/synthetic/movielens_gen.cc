#include "data/synthetic/movielens_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kgag {

namespace {

using Latent = std::vector<double>;

Latent RandomLatent(int dim, double scale, Rng* rng) {
  Latent v(dim);
  for (double& x : v) x = rng->Normal(0.0, scale);
  return v;
}

void Normalize(Latent* v) {
  double n = 0;
  for (double x : *v) n += x * x;
  n = std::sqrt(n);
  if (n < 1e-12) return;
  for (double& x : *v) x /= n;
}

void Axpy(double a, const Latent& x, Latent* y) {
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += a * x[i];
}

double Dot(const Latent& a, const Latent& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

MovieLensWorld GenerateMovieLensWorld(const MovieLensConfig& cfg, Rng* rng) {
  KGAG_CHECK_GT(cfg.num_users, 0);
  KGAG_CHECK_GT(cfg.num_movies, 0);
  KGAG_CHECK_GE(cfg.max_genres, cfg.min_genres);

  MovieLensWorld world;
  world.num_users = cfg.num_users;
  world.num_items = cfg.num_movies;
  world.relation_names = {"directed_by", "starring",     "has_genre",
                          "released_in", "produced_by",  "from_country",
                          "in_language", "part_of_series"};

  // Entity id layout: movies first, then each attribute block.
  int32_t next = cfg.num_movies;
  const int32_t dir0 = next;
  next += cfg.num_directors;
  const int32_t act0 = next;
  next += cfg.num_actors;
  const int32_t gen0 = next;
  next += cfg.num_genres;
  const int32_t year0 = next;
  next += cfg.num_years;
  const int32_t stu0 = next;
  next += cfg.num_studios;
  const int32_t cty0 = next;
  next += cfg.num_countries;
  const int32_t lang0 = next;
  next += cfg.num_languages;
  const int32_t ser0 = next;
  next += cfg.num_series;
  world.num_entities = next;

  world.item_to_entity.resize(cfg.num_movies);
  std::iota(world.item_to_entity.begin(), world.item_to_entity.end(), 0);

  const int d = cfg.latent_dim;
  const double s = 1.0 / std::sqrt(static_cast<double>(d));

  // Attribute latents. Genres are the primary taste axes; people-entities
  // (directors, actors) lean towards one or two "home" genres so that
  // shared KG attributes imply correlated preferences.
  std::vector<Latent> genre_lat(cfg.num_genres);
  for (auto& g : genre_lat) {
    g = RandomLatent(d, 1.0, rng);
    Normalize(&g);
  }
  auto genre_anchored = [&](double anchor_w, double noise_w) {
    Latent v(d, 0.0);
    const int g1 = static_cast<int>(rng->UniformInt(0, cfg.num_genres - 1));
    const int g2 = static_cast<int>(rng->UniformInt(0, cfg.num_genres - 1));
    Axpy(anchor_w * 0.6, genre_lat[g1], &v);
    Axpy(anchor_w * 0.4, genre_lat[g2], &v);
    Latent noise = RandomLatent(d, s, rng);
    Axpy(noise_w, noise, &v);
    Normalize(&v);
    return v;
  };

  std::vector<Latent> director_lat(cfg.num_directors);
  for (auto& v : director_lat) v = genre_anchored(0.8, 0.3);
  std::vector<Latent> actor_lat(cfg.num_actors);
  for (auto& v : actor_lat) v = genre_anchored(0.7, 0.4);
  std::vector<Latent> studio_lat(cfg.num_studios);
  for (auto& v : studio_lat) v = RandomLatent(d, s * 0.5, rng);
  std::vector<Latent> series_lat(cfg.num_series);
  for (auto& v : series_lat) v = genre_anchored(0.9, 0.2);

  // Popularity skew for which directors/actors appear often.
  ZipfSampler director_pop(cfg.num_directors, 1.0);
  ZipfSampler actor_pop(cfg.num_actors, 0.8);
  ZipfSampler genre_pop(cfg.num_genres, 0.5);

  // Movies: attributes -> KG triples + latent position.
  world.movie_latents.resize(cfg.num_movies);
  world.movie_quality.resize(cfg.num_movies);
  for (ItemId m = 0; m < cfg.num_movies; ++m) {
    Latent lat(d, 0.0);

    const int n_genres =
        static_cast<int>(rng->UniformInt(cfg.min_genres, cfg.max_genres));
    std::vector<int> genres;
    while (static_cast<int>(genres.size()) < n_genres) {
      const int g = static_cast<int>(genre_pop.Sample(rng));
      if (std::find(genres.begin(), genres.end(), g) == genres.end()) {
        genres.push_back(g);
      }
    }
    for (int g : genres) {
      world.kg_triples.push_back(Triple{m, kHasGenre, gen0 + g});
      Axpy(1.0 / n_genres, genre_lat[g], &lat);
    }

    const int dir = static_cast<int>(director_pop.Sample(rng));
    world.kg_triples.push_back(Triple{m, kDirectedBy, dir0 + dir});
    Axpy(0.7, director_lat[dir], &lat);

    for (int a = 0; a < cfg.num_actors_per_movie; ++a) {
      const int actor = static_cast<int>(actor_pop.Sample(rng));
      world.kg_triples.push_back(Triple{m, kStarring, act0 + actor});
      Axpy(0.35 / cfg.num_actors_per_movie, actor_lat[actor], &lat);
    }

    const int year = static_cast<int>(rng->UniformInt(0, cfg.num_years - 1));
    world.kg_triples.push_back(Triple{m, kReleasedIn, year0 + year});

    const int studio =
        static_cast<int>(rng->UniformInt(0, cfg.num_studios - 1));
    world.kg_triples.push_back(Triple{m, kProducedBy, stu0 + studio});
    Axpy(0.15, studio_lat[studio], &lat);

    const int country =
        static_cast<int>(rng->UniformInt(0, cfg.num_countries - 1));
    world.kg_triples.push_back(Triple{m, kFromCountry, cty0 + country});

    const int lang =
        static_cast<int>(rng->UniformInt(0, cfg.num_languages - 1));
    world.kg_triples.push_back(Triple{m, kInLanguage, lang0 + lang});

    if (rng->Bernoulli(cfg.series_probability)) {
      const int series =
          static_cast<int>(rng->UniformInt(0, cfg.num_series - 1));
      world.kg_triples.push_back(Triple{m, kPartOfSeries, ser0 + series});
      Axpy(0.5, series_lat[series], &lat);
    }

    Latent noise = RandomLatent(d, s * 0.25, rng);
    Axpy(1.0, noise, &lat);
    Normalize(&lat);
    world.movie_latents[m] = std::move(lat);
    world.movie_quality[m] =
        rng->Bernoulli(cfg.good_movie_fraction)
            ? rng->Normal(cfg.good_quality_mean, cfg.good_quality_std)
            : rng->Normal(cfg.bad_quality_mean, cfg.bad_quality_std);
  }

  // Users: genre-anchored tastes.
  world.user_latents.resize(cfg.num_users);
  for (UserId u = 0; u < cfg.num_users; ++u) {
    world.user_latents[u] = genre_anchored(0.85, 0.35);
  }

  // Ratings: each user rates a popularity-skewed subset of the catalogue.
  // Popularity ranks correlate with quality (good movies get watched).
  std::vector<ItemId> by_popularity(cfg.num_movies);
  std::iota(by_popularity.begin(), by_popularity.end(), 0);
  {
    std::vector<double> pop_score(cfg.num_movies);
    for (ItemId m = 0; m < cfg.num_movies; ++m) {
      pop_score[m] = world.movie_quality[m] +
                     rng->Normal(0.0, cfg.popularity_noise);
    }
    std::sort(by_popularity.begin(), by_popularity.end(),
              [&](ItemId a, ItemId b) { return pop_score[a] > pop_score[b]; });
  }
  ZipfSampler movie_pop(cfg.num_movies, cfg.popularity_alpha);

  world.ratings = RatingTable(cfg.num_users, cfg.num_movies);
  for (UserId u = 0; u < cfg.num_users; ++u) {
    const double density =
        rng->Uniform(cfg.min_rating_density, cfg.max_rating_density);
    const int target =
        std::max(1, static_cast<int>(density * cfg.num_movies));
    int rated = 0;
    int attempts = 0;
    while (rated < target && attempts < target * 20) {
      ++attempts;
      const ItemId m = by_popularity[movie_pop.Sample(rng)];
      if (world.ratings.IsRated(u, m)) continue;
      const double affinity =
          cfg.rating_base + cfg.quality_weight * world.movie_quality[m] +
          cfg.affinity_weight * Dot(world.user_latents[u],
                                    world.movie_latents[m]) +
          rng->Normal(0.0, cfg.rating_noise);
      const int r = std::clamp(static_cast<int>(std::lround(affinity)), 1, 5);
      world.ratings.Set(u, m, static_cast<uint8_t>(r));
      ++rated;
    }
  }

  return world;
}

}  // namespace kgag
