// Synthetic Yelp-like world: businesses with a hand-built attribute
// knowledge graph (17 relation types, as the paper constructed for Yelp),
// users organized into friend communities, visits as implicit feedback,
// and occasional groups formed by friend triangles co-visiting a business
// (Inter./group ~= 1.0, reproducing Table I's extreme group sparsity).
//
// Substitution note (DESIGN.md §4): stands in for the Yelp dataset crawl;
// the community structure reproduces the "members are centralized in the
// KG" property §IV-E credits for Yelp's strong results.
#ifndef KGAG_DATA_SYNTHETIC_YELP_GEN_H_
#define KGAG_DATA_SYNTHETIC_YELP_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/interactions.h"
#include "kg/triple.h"

namespace kgag {

/// \brief Knobs of the Yelp-like generator.
struct YelpConfig {
  int32_t num_users = 500;
  int32_t num_businesses = 250;
  int32_t num_communities = 20;
  int32_t num_cities = 8;
  int32_t num_neighborhoods = 30;
  int32_t num_categories = 18;
  int min_categories = 1, max_categories = 3;

  int group_size = 3;
  int32_t num_groups = 900;
  /// Friendship probability inside a community (across communities ~0).
  double friendship_probability = 0.35;

  int min_visits = 12, max_visits = 30;
  /// Probability a visit stays in the user's home city.
  double home_city_bias = 0.85;

  int latent_dim = 8;
};

/// \brief The 17 relation types of the generated business KG.
enum YelpRelation : RelationId {
  kInCity = 0,
  kInNeighborhood = 1,
  kHasCategory = 2,
  kPriceRange = 3,
  kStarsBucket = 4,
  kOffersWifi = 5,
  kAcceptsCards = 6,
  kGoodForKids = 7,
  kHasParking = 8,
  kServesAlcohol = 9,
  kAmbience = 10,
  kNoiseLevel = 11,
  kAttire = 12,
  kOffersDelivery = 13,
  kOffersTakeout = 14,
  kTakesReservations = 15,
  kGoodForGroups = 16,
  kNumYelpRelations = 17,
};

/// \brief Generator output.
struct YelpWorld {
  int32_t num_users = 0;
  int32_t num_items = 0;  ///< businesses

  /// Visits: Y^U implicit feedback.
  InteractionMatrix visits;

  std::vector<Triple> kg_triples;
  int32_t num_entities = 0;
  int32_t num_relations = kNumYelpRelations;
  std::vector<std::string> relation_names;
  std::vector<EntityId> item_to_entity;

  /// Friend-triangle groups and their (single) co-visit interactions.
  GroupTable groups;
  InteractionMatrix group_item;

  /// Diagnostics (not visible to models).
  std::vector<int32_t> user_community;
  std::vector<int32_t> business_city;
};

YelpWorld GenerateYelpWorld(const YelpConfig& config, Rng* rng);

}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_YELP_GEN_H_
