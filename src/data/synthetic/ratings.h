// Dense explicit-rating storage (1..5 stars) produced by the synthetic
// MovieLens-like generator. Group positives and the PCC similarity used to
// build MovieLens-20M-Simi-style groups are both derived from this table.
#ifndef KGAG_DATA_SYNTHETIC_RATINGS_H_
#define KGAG_DATA_SYNTHETIC_RATINGS_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "data/interactions.h"

namespace kgag {

/// \brief Dense user x item rating matrix; 0 means unrated.
class RatingTable {
 public:
  RatingTable() = default;
  RatingTable(int32_t num_users, int32_t num_items)
      : num_users_(num_users),
        num_items_(num_items),
        ratings_(static_cast<size_t>(num_users) * num_items, 0) {}

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }

  /// Rating in {0 (unrated), 1..5}.
  uint8_t Get(UserId u, ItemId v) const {
    KGAG_DCHECK(u >= 0 && u < num_users_ && v >= 0 && v < num_items_);
    return ratings_[static_cast<size_t>(u) * num_items_ + v];
  }

  void Set(UserId u, ItemId v, uint8_t rating) {
    KGAG_DCHECK(rating <= 5);
    KGAG_DCHECK(u >= 0 && u < num_users_ && v >= 0 && v < num_items_);
    ratings_[static_cast<size_t>(u) * num_items_ + v] = rating;
  }

  bool IsRated(UserId u, ItemId v) const { return Get(u, v) != 0; }

  /// Number of (u, v) pairs with a rating.
  size_t CountRated() const;

  /// Number of rated pairs with rating >= threshold.
  size_t CountAtLeast(uint8_t threshold) const;

  /// Items the user rated >= threshold (the implicit-feedback conversion
  /// used for Y^U, following KGCN's MovieLens-20M preprocessing).
  std::vector<ItemId> LikedItems(UserId u, uint8_t threshold = 4) const;

  /// Implicit interaction matrix from the >= threshold conversion.
  InteractionMatrix ToImplicit(uint8_t threshold = 4) const;

 private:
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  std::vector<uint8_t> ratings_;
};

/// Pearson correlation coefficient between two users over co-rated items,
/// the group-similarity statistic of §IV-B. Returns 0 when fewer than
/// `min_overlap` co-rated items exist or either variance is 0.
double PearsonCorrelation(const RatingTable& ratings, UserId a, UserId b,
                          int min_overlap = 3);

}  // namespace kgag

#endif  // KGAG_DATA_SYNTHETIC_RATINGS_H_
