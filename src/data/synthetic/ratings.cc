#include "data/synthetic/ratings.h"

#include <cmath>

namespace kgag {

size_t RatingTable::CountRated() const {
  size_t n = 0;
  for (uint8_t r : ratings_) n += (r != 0);
  return n;
}

size_t RatingTable::CountAtLeast(uint8_t threshold) const {
  size_t n = 0;
  for (uint8_t r : ratings_) n += (r >= threshold && r != 0);
  return n;
}

std::vector<ItemId> RatingTable::LikedItems(UserId u, uint8_t threshold) const {
  std::vector<ItemId> out;
  for (ItemId v = 0; v < num_items_; ++v) {
    const uint8_t r = Get(u, v);
    if (r != 0 && r >= threshold) out.push_back(v);
  }
  return out;
}

InteractionMatrix RatingTable::ToImplicit(uint8_t threshold) const {
  std::vector<Interaction> pairs;
  for (UserId u = 0; u < num_users_; ++u) {
    for (ItemId v = 0; v < num_items_; ++v) {
      const uint8_t r = Get(u, v);
      if (r != 0 && r >= threshold) pairs.push_back(Interaction{u, v});
    }
  }
  return InteractionMatrix::FromPairs(num_users_, num_items_,
                                      std::move(pairs));
}

double PearsonCorrelation(const RatingTable& ratings, UserId a, UserId b,
                          int min_overlap) {
  double sum_a = 0, sum_b = 0;
  int n = 0;
  const int32_t items = ratings.num_items();
  for (ItemId v = 0; v < items; ++v) {
    const uint8_t ra = ratings.Get(a, v);
    const uint8_t rb = ratings.Get(b, v);
    if (ra == 0 || rb == 0) continue;
    sum_a += ra;
    sum_b += rb;
    ++n;
  }
  if (n < min_overlap) return 0.0;
  const double mean_a = sum_a / n;
  const double mean_b = sum_b / n;
  double cov = 0, var_a = 0, var_b = 0;
  for (ItemId v = 0; v < items; ++v) {
    const uint8_t ra = ratings.Get(a, v);
    const uint8_t rb = ratings.Get(b, v);
    if (ra == 0 || rb == 0) continue;
    const double da = ra - mean_a;
    const double db = rb - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0 || var_b <= 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace kgag
