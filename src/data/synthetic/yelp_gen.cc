#include "data/synthetic/yelp_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace kgag {

namespace {

using Latent = std::vector<double>;

Latent RandomLatent(int dim, double scale, Rng* rng) {
  Latent v(dim);
  for (double& x : v) x = rng->Normal(0.0, scale);
  return v;
}

void Normalize(Latent* v) {
  double n = 0;
  for (double x : *v) n += x * x;
  n = std::sqrt(n);
  if (n < 1e-12) return;
  for (double& x : *v) x /= n;
}

void Axpy(double a, const Latent& x, Latent* y) {
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += a * x[i];
}

double Dot(const Latent& a, const Latent& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

YelpWorld GenerateYelpWorld(const YelpConfig& cfg, Rng* rng) {
  KGAG_CHECK_GT(cfg.num_users, 0);
  KGAG_CHECK_GT(cfg.num_businesses, 0);
  KGAG_CHECK_GT(cfg.num_communities, 0);

  YelpWorld world;
  world.num_users = cfg.num_users;
  world.num_items = cfg.num_businesses;
  world.relation_names = {
      "in_city",        "in_neighborhood",  "has_category",
      "price_range",    "stars_bucket",     "offers_wifi",
      "accepts_cards",  "good_for_kids",    "has_parking",
      "serves_alcohol", "ambience",         "noise_level",
      "attire",         "offers_delivery",  "offers_takeout",
      "takes_reservations", "good_for_groups"};

  // Entity layout: businesses, then one value block per relation.
  int32_t next = cfg.num_businesses;
  auto block = [&next](int32_t n) {
    const int32_t start = next;
    next += n;
    return start;
  };
  const int32_t city0 = block(cfg.num_cities);
  const int32_t hood0 = block(cfg.num_neighborhoods);
  const int32_t cat0 = block(cfg.num_categories);
  const int32_t price0 = block(4);
  const int32_t stars0 = block(5);
  const int32_t wifi0 = block(2);
  const int32_t cards0 = block(2);
  const int32_t kids0 = block(2);
  const int32_t parking0 = block(3);
  const int32_t alcohol0 = block(3);
  const int32_t ambience0 = block(6);
  const int32_t noise0 = block(4);
  const int32_t attire0 = block(3);
  const int32_t delivery0 = block(2);
  const int32_t takeout0 = block(2);
  const int32_t resv0 = block(2);
  const int32_t grp0 = block(2);
  world.num_entities = next;

  world.item_to_entity.resize(cfg.num_businesses);
  std::iota(world.item_to_entity.begin(), world.item_to_entity.end(), 0);

  const int d = cfg.latent_dim;
  const double s = 1.0 / std::sqrt(static_cast<double>(d));

  // Category latents are the taste axes; community latents anchor on them.
  std::vector<Latent> category_lat(cfg.num_categories);
  for (auto& c : category_lat) {
    c = RandomLatent(d, 1.0, rng);
    Normalize(&c);
  }
  struct Community {
    int32_t home_city;
    Latent taste;
  };
  std::vector<Community> communities(cfg.num_communities);
  for (auto& com : communities) {
    com.home_city = static_cast<int32_t>(rng->UniformInt(0, cfg.num_cities - 1));
    com.taste.assign(d, 0.0);
    const int c1 = static_cast<int>(rng->UniformInt(0, cfg.num_categories - 1));
    const int c2 = static_cast<int>(rng->UniformInt(0, cfg.num_categories - 1));
    Axpy(0.6, category_lat[c1], &com.taste);
    Axpy(0.4, category_lat[c2], &com.taste);
    Latent noise = RandomLatent(d, s * 0.3, rng);
    Axpy(1.0, noise, &com.taste);
    Normalize(&com.taste);
  }

  // Users: community membership + slightly perturbed community taste.
  world.user_community.resize(cfg.num_users);
  std::vector<Latent> user_lat(cfg.num_users);
  std::vector<std::vector<UserId>> community_members(cfg.num_communities);
  for (UserId u = 0; u < cfg.num_users; ++u) {
    const int32_t com =
        static_cast<int32_t>(rng->UniformInt(0, cfg.num_communities - 1));
    world.user_community[u] = com;
    community_members[com].push_back(u);
    user_lat[u] = communities[com].taste;
    Latent noise = RandomLatent(d, s * 0.45, rng);
    Axpy(1.0, noise, &user_lat[u]);
    Normalize(&user_lat[u]);
  }

  // Businesses: city + categories drive the latent; quality drives stars.
  world.business_city.resize(cfg.num_businesses);
  std::vector<Latent> biz_lat(cfg.num_businesses);
  std::vector<double> biz_quality(cfg.num_businesses);
  auto add_bool = [&](ItemId b, RelationId rel, int32_t base, int n_values,
                      double p_first) {
    const int v = rng->Bernoulli(p_first)
                      ? 0
                      : static_cast<int>(rng->UniformInt(1, n_values - 1));
    world.kg_triples.push_back(Triple{b, rel, base + v});
  };
  for (ItemId b = 0; b < cfg.num_businesses; ++b) {
    const int32_t city =
        static_cast<int32_t>(rng->UniformInt(0, cfg.num_cities - 1));
    world.business_city[b] = city;
    world.kg_triples.push_back(Triple{b, kInCity, city0 + city});
    // Neighborhoods nest in cities: hood id = city * (H/C) + local.
    const int hoods_per_city =
        std::max(1, cfg.num_neighborhoods / cfg.num_cities);
    const int hood = std::min<int>(
        cfg.num_neighborhoods - 1,
        city * hoods_per_city +
            static_cast<int>(rng->UniformInt(0, hoods_per_city - 1)));
    world.kg_triples.push_back(Triple{b, kInNeighborhood, hood0 + hood});

    Latent lat(d, 0.0);
    const int n_cats =
        static_cast<int>(rng->UniformInt(cfg.min_categories, cfg.max_categories));
    std::vector<int> cats;
    while (static_cast<int>(cats.size()) < n_cats) {
      const int c = static_cast<int>(rng->UniformInt(0, cfg.num_categories - 1));
      if (std::find(cats.begin(), cats.end(), c) == cats.end()) {
        cats.push_back(c);
      }
    }
    for (int c : cats) {
      world.kg_triples.push_back(Triple{b, kHasCategory, cat0 + c});
      Axpy(1.0 / n_cats, category_lat[c], &lat);
    }
    Latent noise = RandomLatent(d, s * 0.3, rng);
    Axpy(1.0, noise, &lat);
    Normalize(&lat);
    biz_lat[b] = std::move(lat);

    biz_quality[b] = rng->Normal(0.0, 1.0);
    const int stars = std::clamp(
        static_cast<int>(std::lround(2.0 + biz_quality[b])), 0, 4);
    world.kg_triples.push_back(Triple{b, kStarsBucket, stars0 + stars});
    world.kg_triples.push_back(Triple{
        b, kPriceRange,
        price0 + static_cast<int32_t>(rng->UniformInt(0, 3))});
    add_bool(b, kOffersWifi, wifi0, 2, 0.6);
    add_bool(b, kAcceptsCards, cards0, 2, 0.85);
    add_bool(b, kGoodForKids, kids0, 2, 0.5);
    add_bool(b, kHasParking, parking0, 3, 0.4);
    add_bool(b, kServesAlcohol, alcohol0, 3, 0.45);
    world.kg_triples.push_back(Triple{
        b, kAmbience, ambience0 + static_cast<int32_t>(rng->UniformInt(0, 5))});
    world.kg_triples.push_back(Triple{
        b, kNoiseLevel, noise0 + static_cast<int32_t>(rng->UniformInt(0, 3))});
    world.kg_triples.push_back(Triple{
        b, kAttire, attire0 + static_cast<int32_t>(rng->UniformInt(0, 2))});
    add_bool(b, kOffersDelivery, delivery0, 2, 0.5);
    add_bool(b, kOffersTakeout, takeout0, 2, 0.7);
    add_bool(b, kTakesReservations, resv0, 2, 0.4);
    add_bool(b, kGoodForGroups, grp0, 2, 0.6);
  }

  // Businesses grouped by city for visit sampling.
  std::vector<std::vector<ItemId>> by_city(cfg.num_cities);
  for (ItemId b = 0; b < cfg.num_businesses; ++b) {
    by_city[world.business_city[b]].push_back(b);
  }

  // Visit affinity: taste match + quality, biased to the home city.
  auto affinity = [&](UserId u, ItemId b) {
    return 1.4 * Dot(user_lat[u], biz_lat[b]) + 0.6 * biz_quality[b];
  };

  std::vector<Interaction> visit_pairs;
  for (UserId u = 0; u < cfg.num_users; ++u) {
    const int32_t home = communities[world.user_community[u]].home_city;
    const int n_visits =
        static_cast<int>(rng->UniformInt(cfg.min_visits, cfg.max_visits));
    std::unordered_set<ItemId> visited;
    int attempts = 0;
    while (static_cast<int>(visited.size()) < n_visits &&
           attempts < n_visits * 30) {
      ++attempts;
      const auto& pool = (rng->Bernoulli(cfg.home_city_bias) &&
                          !by_city[home].empty())
                             ? by_city[home]
                             : by_city[static_cast<size_t>(
                                   rng->UniformInt(0, cfg.num_cities - 1))];
      if (pool.empty()) continue;
      const ItemId b = pool[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
      if (visited.count(b)) continue;
      // Accept with probability increasing in affinity (logistic).
      const double a = affinity(u, b);
      if (rng->Uniform() < 1.0 / (1.0 + std::exp(-1.5 * a))) {
        visited.insert(b);
        visit_pairs.push_back(Interaction{u, b});
      }
    }
  }
  world.visits = InteractionMatrix::FromPairs(cfg.num_users,
                                              cfg.num_businesses,
                                              std::move(visit_pairs));

  // Friendship graph inside each community (Erdős–Rényi).
  std::vector<std::unordered_set<UserId>> friends(cfg.num_users);
  for (const auto& members : community_members) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (rng->Bernoulli(cfg.friendship_probability)) {
          friends[members[i]].insert(members[j]);
          friends[members[j]].insert(members[i]);
        }
      }
    }
  }

  // Groups: friend cliques of `group_size` co-visiting the business with
  // the highest joint affinity (plus noise) in their home city.
  std::vector<std::vector<UserId>> member_lists;
  std::vector<Interaction> group_pairs;
  int attempts = 0;
  const int max_attempts = cfg.num_groups * 80;
  while (static_cast<int32_t>(member_lists.size()) < cfg.num_groups &&
         attempts < max_attempts) {
    ++attempts;
    const UserId seed =
        static_cast<UserId>(rng->UniformInt(0, cfg.num_users - 1));
    if (static_cast<int>(friends[seed].size()) < cfg.group_size - 1) continue;
    std::vector<UserId> flist(friends[seed].begin(), friends[seed].end());
    std::sort(flist.begin(), flist.end());
    rng->Shuffle(&flist);
    std::vector<UserId> members{seed};
    for (UserId cand : flist) {
      if (static_cast<int>(members.size()) == cfg.group_size) break;
      bool clique = true;
      for (UserId m : members) {
        if (m != seed && !friends[cand].count(m)) {
          clique = false;
          break;
        }
      }
      if (clique) members.push_back(cand);
    }
    if (static_cast<int>(members.size()) != cfg.group_size) continue;

    // The group's event: best joint-affinity business in the home city.
    const int32_t home = communities[world.user_community[seed]].home_city;
    const auto& pool = by_city[home].empty()
                           ? by_city[0]
                           : by_city[home];
    if (pool.empty()) continue;
    ItemId best = pool[0];
    double best_score = -1e300;
    for (ItemId b : pool) {
      double joint = 0.0;
      for (UserId m : members) joint += affinity(m, b);
      joint += rng->Normal(0.0, 0.8);  // event circumstance noise
      if (joint > best_score) {
        best_score = joint;
        best = b;
      }
    }
    std::sort(members.begin(), members.end());
    const GroupId g = static_cast<GroupId>(member_lists.size());
    member_lists.push_back(std::move(members));
    group_pairs.push_back(Interaction{g, best});
  }
  world.groups = GroupTable(std::move(member_lists));
  world.group_item = InteractionMatrix::FromPairs(
      world.groups.num_groups(), cfg.num_businesses, std::move(group_pairs));

  return world;
}

}  // namespace kgag
