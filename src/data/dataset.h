// GroupRecDataset: everything one experiment consumes — the item knowledge
// graph, user-item interactions, groups and their (split) group-item
// interactions. Produced by the synthetic generators, consumed by models
// and the evaluator.
#ifndef KGAG_DATA_DATASET_H_
#define KGAG_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/interactions.h"
#include "kg/triple.h"

namespace kgag {

/// \brief Table I row: corpus statistics.
struct DatasetStats {
  std::string name;
  int64_t total_groups = 0;
  int64_t total_items = 0;
  int64_t total_users = 0;
  int64_t group_size = 0;
  int64_t group_interactions = 0;
  double interactions_per_group = 0.0;
  // Knowledge graph side.
  int64_t kg_entities = 0;
  int64_t kg_relations = 0;
  int64_t kg_triples = 0;
};

/// \brief 60/20/20 split of group-item interactions (§IV-B).
struct GroupSplit {
  std::vector<Interaction> train;
  std::vector<Interaction> valid;
  std::vector<Interaction> test;
};

/// \brief A complete group-recommendation corpus.
struct GroupRecDataset {
  std::string name;
  int32_t num_users = 0;
  int32_t num_items = 0;

  // Knowledge graph (item side).
  std::vector<Triple> kg_triples;
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  std::vector<std::string> relation_names;
  /// Mapping f: item -> entity (identity-like, injective).
  std::vector<EntityId> item_to_entity;

  // Interactions.
  InteractionMatrix user_item;   ///< Y^U
  GroupTable groups;
  InteractionMatrix group_item;  ///< Y^G (all interactions, pre-split)
  int32_t group_size = 0;        ///< fixed member count per group

  GroupSplit split;

  DatasetStats Stats() const;

  /// Items that occur as positives in the test split (candidate set for
  /// ranking, per the paper's protocol "each item in test set").
  std::vector<ItemId> TestItemPool() const;

  /// Sanity checks: id ranges, group sizes, split partitioning.
  Status Validate() const;
};

/// Shuffles the group-item interactions with `rng` and splits them
/// 60/20/20 into train/valid/test.
GroupSplit SplitInteractions(const InteractionMatrix& group_item, Rng* rng,
                             double train_frac = 0.6, double valid_frac = 0.2);

/// Keeps each interaction independently with probability `keep_fraction`.
/// Used to model partially-observed implicit feedback: the generators know
/// every "liked" pair, but a recommender only ever sees a behavioral
/// subset — this is what makes the sparsity problem (§I) real.
InteractionMatrix SubsampleInteractions(const InteractionMatrix& m,
                                        double keep_fraction, Rng* rng);

}  // namespace kgag

#endif  // KGAG_DATA_DATASET_H_
