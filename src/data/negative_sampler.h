// Negative sampling for pairwise training: draws items the group (or user)
// has NOT engaged with, uniformly over the item universe.
#ifndef KGAG_DATA_NEGATIVE_SAMPLER_H_
#define KGAG_DATA_NEGATIVE_SAMPLER_H_

#include "common/rng.h"
#include "data/interactions.h"
#include "obs/obs.h"

namespace kgag {

/// \brief Uniform rejection sampler over non-interacted items.
class NegativeSampler {
 public:
  /// \param interactions matrix defining the positives to avoid; must
  ///        outlive the sampler
  explicit NegativeSampler(const InteractionMatrix* interactions)
      : interactions_(interactions) {
    KGAG_CHECK(interactions != nullptr);
  }

  /// An item v with y_{row,v} == 0. After `max_attempts` uniform-draw
  /// rejections (dense rows), falls back to rank-selecting a true negative
  /// from the row's sorted positives, so a positive is only ever returned
  /// when the row interacted with every item (no negative exists).
  ItemId Sample(int32_t row, Rng* rng, int max_attempts = 64) const {
    const int32_t n = interactions_->num_items();
    KGAG_CHECK_GT(n, 0);
    KGAG_COUNTER_ADD("negsampler.samples", 1);
    for (int i = 0; i < max_attempts; ++i) {
      const ItemId v = static_cast<ItemId>(rng->UniformInt(0, n - 1));
      if (!interactions_->Contains(row, v)) {
        KGAG_COUNTER_ADD("negsampler.rejections", i);
        return v;
      }
    }
    // Rejection sampling exhausted. rejections/samples is the rejection
    // rate the epoch snapshot exposes.
    KGAG_COUNTER_ADD("negsampler.rejections", max_attempts);
    KGAG_COUNTER_ADD("negsampler.fallback_scans", 1);
    const auto positives = interactions_->ItemsOf(row);
    const int64_t num_negatives =
        static_cast<int64_t>(n) - static_cast<int64_t>(positives.size());
    if (num_negatives <= 0) {
      // Degenerate row: every item is a positive; nothing valid to return.
      KGAG_COUNTER_ADD("negsampler.exhausted", 1);
      return static_cast<ItemId>(rng->UniformInt(0, n - 1));
    }
    // Uniform pick over the negatives: choose the k-th absent item by
    // walking the sorted positives list (O(degree), still uniform).
    int64_t v = rng->UniformInt(0, num_negatives - 1);
    for (const ItemId p : positives) {
      if (p <= v) {
        ++v;
      } else {
        break;
      }
    }
    return static_cast<ItemId>(v);
  }

 private:
  const InteractionMatrix* interactions_;
};

}  // namespace kgag

#endif  // KGAG_DATA_NEGATIVE_SAMPLER_H_
