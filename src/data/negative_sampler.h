// Negative sampling for pairwise training: draws items the group (or user)
// has NOT engaged with, uniformly over the item universe.
#ifndef KGAG_DATA_NEGATIVE_SAMPLER_H_
#define KGAG_DATA_NEGATIVE_SAMPLER_H_

#include "common/rng.h"
#include "data/interactions.h"
#include "obs/obs.h"

namespace kgag {

/// \brief Uniform rejection sampler over non-interacted items.
class NegativeSampler {
 public:
  /// \param interactions matrix defining the positives to avoid; must
  ///        outlive the sampler
  explicit NegativeSampler(const InteractionMatrix* interactions)
      : interactions_(interactions) {
    KGAG_CHECK(interactions != nullptr);
  }

  /// An item v with y_{row,v} == 0. Falls back to any item after
  /// `max_attempts` rejections (degenerate rows that interacted with
  /// everything).
  ItemId Sample(int32_t row, Rng* rng, int max_attempts = 64) const {
    const int32_t n = interactions_->num_items();
    KGAG_CHECK_GT(n, 0);
    KGAG_COUNTER_ADD("negsampler.samples", 1);
    for (int i = 0; i < max_attempts; ++i) {
      const ItemId v = static_cast<ItemId>(rng->UniformInt(0, n - 1));
      if (!interactions_->Contains(row, v)) {
        KGAG_COUNTER_ADD("negsampler.rejections", i);
        return v;
      }
    }
    // Exhausted: every draw hit a positive. rejections/samples is the
    // rejection rate the epoch snapshot exposes.
    KGAG_COUNTER_ADD("negsampler.rejections", max_attempts);
    KGAG_COUNTER_ADD("negsampler.exhausted", 1);
    return static_cast<ItemId>(rng->UniformInt(0, n - 1));
  }

 private:
  const InteractionMatrix* interactions_;
};

}  // namespace kgag

#endif  // KGAG_DATA_NEGATIVE_SAMPLER_H_
