// Crash-safe training checkpoints (DESIGN.md §8).
//
// A checkpoint file is a versioned chunked container:
//
//   header  := magic "KGAGCKP1" | u32 version | u32 chunk_count | u32 crc
//              (crc covers magic..chunk_count)
//   chunk   := u32 tag | u64 payload_len | payload
//              | u32 crc(tag..payload)
//
// Every length is bounded before it sizes an allocation and every payload
// is CRC32-validated before it is parsed, so corrupt, truncated or
// bit-flipped files are rejected with a Status instead of being trusted.
//
// TrainingState is the full optimization trajectory of a training run:
// parameter tensors, optimizer moments/step counts, RNG engine states,
// batcher shuffles/cursors, validation-selector snapshot and the epoch
// bookkeeping. Restoring it and continuing produces a run bit-identical
// to one that was never interrupted.
//
// CheckpointManager handles the directory: atomic writes (temp + fsync +
// rename with bounded retry), keep-last-N retention, and load-time
// fallback to the newest *intact* snapshot when the newest file is
// corrupt. Saves and loads publish ckpt.* counters and latency histograms
// through src/obs/.
#ifndef KGAG_CKPT_CHECKPOINT_H_
#define KGAG_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"

namespace kgag {
namespace ckpt {

inline constexpr uint32_t kFormatVersion = 1;

/// Four-character chunk tag packed little-endian ('M','E','T','A' reads
/// back as "META" in a hex dump).
constexpr uint32_t MakeTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

inline constexpr uint32_t kTagMeta = MakeTag('M', 'E', 'T', 'A');
inline constexpr uint32_t kTagParams = MakeTag('P', 'A', 'R', 'M');
inline constexpr uint32_t kTagOptimizer = MakeTag('O', 'P', 'T', 'M');
inline constexpr uint32_t kTagRng = MakeTag('R', 'N', 'G', 'S');
inline constexpr uint32_t kTagBatcher = MakeTag('B', 'T', 'C', 'H');
inline constexpr uint32_t kTagSelector = MakeTag('V', 'S', 'E', 'L');
inline constexpr uint32_t kTagLosses = MakeTag('L', 'O', 'S', 'S');

/// \brief One tagged, CRC-protected payload inside a checkpoint file.
struct Chunk {
  uint32_t tag = 0;
  std::string payload;
};

/// Serializes chunks into the container format (header + CRCs).
Status EncodeContainer(const std::vector<Chunk>& chunks, std::string* out);

/// Parses and validates a container; any corruption (bad magic, version,
/// header CRC, truncated chunk, payload CRC mismatch) returns a non-OK
/// Status and leaves `out` unspecified.
Status DecodeContainer(std::string_view data, std::vector<Chunk>* out);

/// Same container format under a caller-chosen 8-byte magic, so other
/// file kinds (e.g. the serving artifact, magic "KGAGSRV1") reuse the
/// chunk framing, CRC discipline and allocation bounds without being
/// mistakable for a training checkpoint. `magic` must be exactly 8 bytes.
Status EncodeContainer(std::string_view magic,
                       const std::vector<Chunk>& chunks, std::string* out);
Status DecodeContainer(std::string_view magic, std::string_view data,
                       std::vector<Chunk>* out);

/// \brief Streams a chunked container straight to disk — byte-identical
/// to EncodeContainer + AtomicWriteFile, but with O(chunk-buffer) memory:
/// each chunk's payload is appended in pieces while a rolling CRC
/// accumulates, so a multi-gigabyte artifact never has to exist as one
/// encoded string. The chunk count is part of the CRC-protected header,
/// so it must be declared at Open time.
///
///   ContainerFileWriter w;
///   w.Open(path, magic, /*chunk_count=*/3);
///   w.BeginChunk(kTagFoo, payload_len);
///   w.Append(piece1); w.Append(piece2);   // exactly payload_len bytes
///   w.EndChunk();
///   ... remaining chunks ...
///   w.Finish();   // fsync + atomic rename, as AtomicWriteFile does
///
/// Any error abandons the temp file; the destination is never replaced
/// with a partial container.
class ContainerFileWriter {
 public:
  /// Opens the temp file and writes the container header. `magic` must be
  /// exactly 8 bytes (defaults to the training-checkpoint magic).
  Status Open(const std::string& path, std::string_view magic,
              uint32_t chunk_count, const AtomicWriteOptions& options = {});

  /// Starts a chunk whose payload is exactly `payload_len` bytes.
  Status BeginChunk(uint32_t tag, uint64_t payload_len);
  /// Appends payload bytes to the open chunk.
  Status Append(const void* data, size_t len);
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }
  /// Closes the chunk: verifies the declared length was written and emits
  /// the chunk CRC.
  Status EndChunk();
  /// BeginChunk + Append + EndChunk for an already-materialized payload.
  Status AddChunk(uint32_t tag, std::string_view payload);

  /// Verifies all declared chunks were written, then fsyncs and renames
  /// the temp file over the destination.
  Status Finish();
  /// Drops the temp file without touching the destination.
  void Abandon() { file_.Abandon(); }

  /// Bytes written so far (header + finished chunks + open-chunk bytes).
  uint64_t bytes_written() const { return file_.position(); }

 private:
  AtomicFileWriter file_;
  uint32_t chunks_declared_ = 0;
  uint32_t chunks_done_ = 0;
  bool in_chunk_ = false;
  uint64_t chunk_remaining_ = 0;
  uint32_t chunk_crc_ = 0;
};

/// \brief Full training state of one run, as opaque sub-blobs produced by
/// the owning components (SaveParameters, Optimizer/Batcher/Rng/selector
/// SaveState). The checkpoint layer versions, checksums and stores them;
/// the components validate their own contents on restore.
struct TrainingState {
  /// Epoch to (re-)enter on resume. With `mid_epoch` false the state was
  /// captured at an epoch boundary; with it true, `epoch` is in progress
  /// and `batches_done`/`partial_loss` describe how far it got.
  uint64_t epoch = 0;
  bool mid_epoch = false;
  uint64_t batches_done = 0;
  double partial_loss = 0.0;
  std::vector<double> epoch_losses;

  std::string params;     ///< SaveParameters blob
  std::string optimizer;  ///< Optimizer::SaveState blob
  /// Rng engine states (init + train), then a tagged record with the
  /// counter-based stream seed (absent in pre-stream checkpoints; see
  /// KgagModel::CaptureTrainingState).
  std::string rng;
  std::string batcher;    ///< Batcher::SaveState blob
  std::string selector;   ///< ValidationSelector::SaveState blob (optional)
};

Status EncodeTrainingState(const TrainingState& state, std::string* out);
Status DecodeTrainingState(std::string_view data, TrainingState* out);

/// \brief Owns a checkpoint directory: durable saves, retention, and
/// newest-intact-first loads.
class CheckpointManager {
 public:
  struct Options {
    std::string dir;
    /// Snapshots retained after each save; older ones are pruned.
    int keep_last = 3;
    /// Attempts per atomic write before Save reports failure.
    int max_retries = 3;
    /// Base backoff between attempts (sleep attempt*backoff).
    int retry_backoff_ms = 5;
    /// fsync file + directory on save (disable only in tests).
    bool fsync = true;
  };

  explicit CheckpointManager(Options options);

  /// Encodes and durably writes one snapshot, then applies retention.
  /// Creates the directory on first use.
  Status Save(const TrainingState& state);

  /// Newest intact snapshot, skipping (and counting) corrupt files.
  /// NotFound when the directory holds no loadable snapshot.
  Result<TrainingState> LoadLatest();

  /// Snapshot file paths, oldest first.
  std::vector<std::string> ListSnapshots() const;

  const Options& options() const { return options_; }

 private:
  Status EnsureDir();
  void Prune(std::vector<std::string> snapshots);

  Options options_;
  uint64_t next_seq_ = 0;  ///< 0 = derive from the directory on first save
};

}  // namespace ckpt
}  // namespace kgag

#endif  // KGAG_CKPT_CHECKPOINT_H_
