#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/obs.h"

namespace kgag {
namespace ckpt {

namespace {

constexpr char kMagic[8] = {'K', 'G', 'A', 'G', 'C', 'K', 'P', '1'};
constexpr size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(uint32_t);
// A chunk payload larger than this is treated as corruption, not data:
// even the entity table of a very large run stays far below it.
constexpr uint64_t kMaxChunkLen = 1ull << 33;  // 8 GiB
constexpr uint32_t kMaxChunks = 1024;

constexpr char kSnapshotPrefix[] = "ckpt-";
constexpr char kSnapshotSuffix[] = ".kgag";

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadRaw(std::string_view data, size_t* pos, void* out, size_t len) {
  if (data.size() - *pos < len) return false;
  std::memcpy(out, data.data() + *pos, len);
  *pos += len;
  return true;
}

/// Sequence number encoded in a snapshot filename, or 0 if the name
/// doesn't match the ckpt-<seq>.kgag pattern.
uint64_t SnapshotSeq(const std::string& filename) {
  const size_t prefix_len = sizeof(kSnapshotPrefix) - 1;
  const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kSnapshotPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kSnapshotSuffix) != 0) {
    return 0;
  }
  uint64_t seq = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

std::string SnapshotName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%012llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(seq), kSnapshotSuffix);
  return buf;
}

}  // namespace

Status EncodeContainer(const std::vector<Chunk>& chunks, std::string* out) {
  return EncodeContainer(std::string_view(kMagic, sizeof(kMagic)), chunks,
                         out);
}

Status DecodeContainer(std::string_view data, std::vector<Chunk>* out) {
  return DecodeContainer(std::string_view(kMagic, sizeof(kMagic)), data, out);
}

Status EncodeContainer(std::string_view magic,
                       const std::vector<Chunk>& chunks, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (magic.size() != sizeof(kMagic)) {
    return Status::InvalidArgument("container magic must be 8 bytes");
  }
  if (chunks.size() > kMaxChunks) {
    return Status::InvalidArgument("too many chunks");
  }
  out->clear();
  out->append(magic.data(), magic.size());
  AppendU32(out, kFormatVersion);
  AppendU32(out, static_cast<uint32_t>(chunks.size()));
  AppendU32(out, Crc32(out->data(), kHeaderSize));
  for (const Chunk& c : chunks) {
    if (c.payload.size() > kMaxChunkLen) {
      return Status::InvalidArgument("chunk payload too large");
    }
    // The chunk CRC covers tag + length + payload, so a bit flip in ANY
    // chunk byte — including the tag of an optional chunk, which would
    // otherwise silently decode as an ignorable unknown type — fails
    // validation.
    const size_t chunk_start = out->size();
    AppendU32(out, c.tag);
    AppendU64(out, c.payload.size());
    out->append(c.payload);
    AppendU32(out,
              Crc32(out->data() + chunk_start, out->size() - chunk_start));
  }
  return Status::OK();
}

Status DecodeContainer(std::string_view magic, std::string_view data,
                       std::vector<Chunk>* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (magic.size() != sizeof(kMagic)) {
    return Status::InvalidArgument("container magic must be 8 bytes");
  }
  size_t pos = 0;
  char file_magic[sizeof(kMagic)];
  if (!ReadRaw(data, &pos, file_magic, sizeof(file_magic)) ||
      std::memcmp(file_magic, magic.data(), magic.size()) != 0) {
    return Status::InvalidArgument(
        "bad magic: not a KGAG '" + std::string(magic) + "' container");
  }
  uint32_t version = 0, chunk_count = 0, header_crc = 0;
  if (!ReadRaw(data, &pos, &version, sizeof(version)) ||
      !ReadRaw(data, &pos, &chunk_count, sizeof(chunk_count)) ||
      !ReadRaw(data, &pos, &header_crc, sizeof(header_crc))) {
    return Status::IoError("truncated checkpoint header");
  }
  if (Crc32(data.data(), kHeaderSize) != header_crc) {
    return Status::InvalidArgument("checkpoint header checksum mismatch");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  if (chunk_count > kMaxChunks) {
    return Status::InvalidArgument("checkpoint chunk count out of range");
  }
  out->clear();
  out->reserve(chunk_count);
  for (uint32_t i = 0; i < chunk_count; ++i) {
    const size_t chunk_start = pos;
    uint32_t tag = 0;
    uint64_t len = 0;
    if (!ReadRaw(data, &pos, &tag, sizeof(tag)) ||
        !ReadRaw(data, &pos, &len, sizeof(len))) {
      return Status::IoError("truncated chunk header at index " +
                             std::to_string(i));
    }
    if (len > kMaxChunkLen || len > data.size() - pos) {
      return Status::InvalidArgument("chunk length out of range at index " +
                                     std::to_string(i));
    }
    Chunk chunk;
    chunk.tag = tag;
    chunk.payload.assign(data.data() + pos, len);
    pos += len;
    const uint32_t computed =
        Crc32(data.data() + chunk_start, pos - chunk_start);
    uint32_t crc = 0;
    if (!ReadRaw(data, &pos, &crc, sizeof(crc))) {
      return Status::IoError("truncated chunk checksum at index " +
                             std::to_string(i));
    }
    if (computed != crc) {
      return Status::InvalidArgument("chunk checksum mismatch at index " +
                                     std::to_string(i));
    }
    out->push_back(std::move(chunk));
  }
  if (pos != data.size()) {
    return Status::InvalidArgument("trailing bytes after last chunk");
  }
  return Status::OK();
}

Status ContainerFileWriter::Open(const std::string& path,
                                 std::string_view magic, uint32_t chunk_count,
                                 const AtomicWriteOptions& options) {
  if (magic.size() != sizeof(kMagic)) {
    return Status::InvalidArgument("container magic must be 8 bytes");
  }
  if (chunk_count > kMaxChunks) {
    return Status::InvalidArgument("too many chunks");
  }
  KGAG_RETURN_NOT_OK(file_.Open(path, options));
  chunks_declared_ = chunk_count;
  chunks_done_ = 0;
  in_chunk_ = false;
  // Header bytes exactly as EncodeContainer lays them down, CRC included.
  std::string header;
  header.append(magic.data(), magic.size());
  AppendU32(&header, kFormatVersion);
  AppendU32(&header, chunk_count);
  AppendU32(&header, Crc32(header.data(), kHeaderSize));
  return file_.Append(header);
}

Status ContainerFileWriter::BeginChunk(uint32_t tag, uint64_t payload_len) {
  if (in_chunk_) return Status::InvalidArgument("chunk already open");
  if (chunks_done_ >= chunks_declared_) {
    return Status::InvalidArgument("more chunks than declared at Open");
  }
  if (payload_len > kMaxChunkLen) {
    return Status::InvalidArgument("chunk payload too large");
  }
  std::string hdr;
  AppendU32(&hdr, tag);
  AppendU64(&hdr, payload_len);
  // The chunk CRC covers tag + length + payload (see EncodeContainer).
  chunk_crc_ = Crc32(hdr.data(), hdr.size());
  chunk_remaining_ = payload_len;
  in_chunk_ = true;
  return file_.Append(hdr);
}

Status ContainerFileWriter::Append(const void* data, size_t len) {
  if (!in_chunk_) return Status::InvalidArgument("no chunk open");
  if (len > chunk_remaining_) {
    Abandon();
    return Status::InvalidArgument("chunk payload overruns declared length");
  }
  chunk_crc_ = Crc32(data, len, chunk_crc_);
  chunk_remaining_ -= len;
  return file_.Append(data, len);
}

Status ContainerFileWriter::EndChunk() {
  if (!in_chunk_) return Status::InvalidArgument("no chunk open");
  if (chunk_remaining_ != 0) {
    Abandon();
    return Status::InvalidArgument("chunk payload shorter than declared");
  }
  in_chunk_ = false;
  ++chunks_done_;
  std::string crc;
  AppendU32(&crc, chunk_crc_);
  return file_.Append(crc);
}

Status ContainerFileWriter::AddChunk(uint32_t tag, std::string_view payload) {
  KGAG_RETURN_NOT_OK(BeginChunk(tag, payload.size()));
  KGAG_RETURN_NOT_OK(Append(payload));
  return EndChunk();
}

Status ContainerFileWriter::Finish() {
  if (in_chunk_) {
    Abandon();
    return Status::InvalidArgument("Finish with a chunk still open");
  }
  if (chunks_done_ != chunks_declared_) {
    Abandon();
    return Status::InvalidArgument("fewer chunks written than declared");
  }
  return file_.Finish();
}

Status EncodeTrainingState(const TrainingState& state, std::string* out) {
  std::vector<Chunk> chunks;
  {
    std::ostringstream meta(std::ios::binary);
    bio::WriteU64(&meta, state.epoch);
    bio::WriteU8(&meta, state.mid_epoch ? 1 : 0);
    bio::WriteU64(&meta, state.batches_done);
    bio::WriteDouble(&meta, state.partial_loss);
    chunks.push_back(Chunk{kTagMeta, meta.str()});
  }
  {
    std::ostringstream losses(std::ios::binary);
    bio::WritePodVector(&losses, state.epoch_losses);
    chunks.push_back(Chunk{kTagLosses, losses.str()});
  }
  chunks.push_back(Chunk{kTagParams, state.params});
  chunks.push_back(Chunk{kTagOptimizer, state.optimizer});
  chunks.push_back(Chunk{kTagRng, state.rng});
  chunks.push_back(Chunk{kTagBatcher, state.batcher});
  chunks.push_back(Chunk{kTagSelector, state.selector});
  return EncodeContainer(chunks, out);
}

Status DecodeTrainingState(std::string_view data, TrainingState* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::vector<Chunk> chunks;
  KGAG_RETURN_NOT_OK(DecodeContainer(data, &chunks));
  *out = TrainingState{};
  bool have_meta = false, have_params = false, have_optimizer = false,
       have_rng = false, have_batcher = false;
  for (Chunk& c : chunks) {
    switch (c.tag) {
      case kTagMeta: {
        std::istringstream meta(c.payload, std::ios::binary);
        uint8_t mid = 0;
        if (!bio::ReadU64(&meta, &out->epoch) || !bio::ReadU8(&meta, &mid) ||
            !bio::ReadU64(&meta, &out->batches_done) ||
            !bio::ReadDouble(&meta, &out->partial_loss)) {
          return Status::InvalidArgument("malformed META chunk");
        }
        out->mid_epoch = mid != 0;
        have_meta = true;
        break;
      }
      case kTagLosses: {
        std::istringstream losses(c.payload, std::ios::binary);
        if (!bio::ReadPodVector(&losses, &out->epoch_losses)) {
          return Status::InvalidArgument("malformed LOSS chunk");
        }
        break;
      }
      case kTagParams:
        out->params = std::move(c.payload);
        have_params = true;
        break;
      case kTagOptimizer:
        out->optimizer = std::move(c.payload);
        have_optimizer = true;
        break;
      case kTagRng:
        out->rng = std::move(c.payload);
        have_rng = true;
        break;
      case kTagBatcher:
        out->batcher = std::move(c.payload);
        have_batcher = true;
        break;
      case kTagSelector:
        out->selector = std::move(c.payload);
        break;
      default:
        // Unknown (future) chunk types are skipped after their CRC passed,
        // so older readers tolerate additive format evolution.
        break;
    }
  }
  if (!have_meta || !have_params || !have_optimizer || !have_rng ||
      !have_batcher) {
    return Status::InvalidArgument("checkpoint missing required chunks");
  }
  return Status::OK();
}

CheckpointManager::CheckpointManager(Options options)
    : options_(std::move(options)) {
  KGAG_CHECK(!options_.dir.empty()) << "checkpoint dir must be set";
  if (options_.keep_last < 1) options_.keep_last = 1;
}

Status CheckpointManager::EnsureDir() {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir " + options_.dir +
                           ": " + ec.message());
  }
  return Status::OK();
}

std::vector<std::string> CheckpointManager::ListSnapshots() const {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.dir, ec);
  if (ec) return {};
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const uint64_t seq = SnapshotSeq(name);
    if (seq > 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

Status CheckpointManager::Save(const TrainingState& state) {
  KGAG_OBS_ONLY(Stopwatch watch;)
  KGAG_RETURN_NOT_OK(EnsureDir());
  if (next_seq_ == 0) {
    uint64_t max_seq = 0;
    for (const std::string& path : ListSnapshots()) {
      max_seq = std::max(
          max_seq,
          SnapshotSeq(std::filesystem::path(path).filename().string()));
    }
    next_seq_ = max_seq + 1;
  }
  std::string encoded;
  KGAG_RETURN_NOT_OK(EncodeTrainingState(state, &encoded));
  const std::string path =
      options_.dir + "/" + SnapshotName(next_seq_);
  AtomicWriteOptions write_opts;
  write_opts.max_attempts = options_.max_retries;
  write_opts.retry_backoff_ms = options_.retry_backoff_ms;
  write_opts.fsync_data = options_.fsync;
  const Status st = AtomicWriteFile(path, encoded, write_opts);
  if (!st.ok()) {
    KGAG_COUNTER_ADD("ckpt.save_failures", 1);
    return st;
  }
  ++next_seq_;
  KGAG_COUNTER_ADD("ckpt.saves", 1);
  KGAG_COUNTER_ADD("ckpt.bytes_written", encoded.size());
  KGAG_OBS_ONLY(KGAG_HISTOGRAM_OBSERVE("ckpt.save_latency_us",
                                       watch.ElapsedMicros(),
                                       obs::LatencyBoundsUs());)
  Prune(ListSnapshots());
  return Status::OK();
}

void CheckpointManager::Prune(std::vector<std::string> snapshots) {
  const size_t keep = static_cast<size_t>(options_.keep_last);
  if (snapshots.size() <= keep) return;
  for (size_t i = 0; i + keep < snapshots.size(); ++i) {
    std::error_code ec;
    if (std::filesystem::remove(snapshots[i], ec) && !ec) {
      KGAG_COUNTER_ADD("ckpt.pruned", 1);
    }
  }
}

Result<TrainingState> CheckpointManager::LoadLatest() {
  KGAG_OBS_ONLY(Stopwatch watch;)
  std::vector<std::string> snapshots = ListSnapshots();
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::string bytes;
    Status read = ReadFileToString(*it, &bytes);
    if (read.ok()) {
      TrainingState state;
      const Status decoded = DecodeTrainingState(bytes, &state);
      if (decoded.ok()) {
        KGAG_COUNTER_ADD("ckpt.loads", 1);
        KGAG_OBS_ONLY(KGAG_HISTOGRAM_OBSERVE("ckpt.load_latency_us",
                                             watch.ElapsedMicros(),
                                             obs::LatencyBoundsUs());)
        return state;
      }
      read = decoded;
    }
    // Fall back to the next-newest snapshot: a torn write can only affect
    // the newest file (older ones were complete before it started).
    KGAG_COUNTER_ADD("ckpt.corrupt_skipped", 1);
    KGAG_LOG(Warning) << "skipping corrupt checkpoint " << *it << ": "
                      << read.ToString();
  }
  return Status::NotFound("no loadable checkpoint in " + options_.dir);
}

}  // namespace ckpt
}  // namespace kgag
