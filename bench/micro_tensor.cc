// Kernel micro-benchmarks (google-benchmark): tensor primitives and
// autodiff tape operations that dominate training time.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/optimizer.h"
#include "tensor/tape.h"

namespace kgag {
namespace {

Tensor RandomTensor(size_t rows, size_t cols, Rng* rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng->Normal(0, 1);
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor a = RandomTensor(n, n, &rng);
  Tensor b = RandomTensor(n, n, &rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Tensor a = RandomTensor(n, n, &rng);
  Tensor b = RandomTensor(n, n, &rng);
  for (auto _ : state) {
    Tensor c = MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulTransB)->Arg(16)->Arg(64);

void BM_TapeForwardBackwardMlp(benchmark::State& state) {
  // A small MLP-shaped graph: gather -> matmul -> relu -> matmul -> loss.
  Rng rng(2);
  ParameterStore store;
  Parameter* emb = store.Create("emb", 256, 16, Init::kNormal01, &rng);
  Parameter* w1 = store.Create("w1", 16, 16, Init::kXavierUniform, &rng);
  Parameter* w2 = store.Create("w2", 16, 1, Init::kXavierUniform, &rng);
  std::vector<size_t> ids = {3, 17, 99, 123, 200, 255, 0, 64};
  for (auto _ : state) {
    Tape tape;
    Var x = tape.Gather(emb, ids);
    Var h = tape.Relu(tape.MatMul(x, tape.Leaf(w1)));
    Var out = tape.Mean(tape.MatMul(h, tape.Leaf(w2)));
    tape.Backward(out);
    store.ZeroGrads();
    benchmark::DoNotOptimize(tape.value(out).item());
  }
}
BENCHMARK(BM_TapeForwardBackwardMlp);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(3);
  Tensor x = RandomTensor(64, static_cast<size_t>(state.range(0)), &rng);
  for (auto _ : state) {
    Tape tape;
    Var v = tape.SoftmaxRows(tape.Constant(x));
    benchmark::DoNotOptimize(tape.value(v).data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(4)->Arg(32);

void BM_SegmentWeightedSum(benchmark::State& state) {
  Rng rng(4);
  const size_t n = 16, k = 6, d = 16;
  Tensor w = RandomTensor(n, k, &rng);
  Tensor v = RandomTensor(n * k, d, &rng);
  for (auto _ : state) {
    Tape tape;
    Var out = tape.SegmentWeightedSumRows(tape.Constant(w), tape.Constant(v));
    benchmark::DoNotOptimize(tape.value(out).data());
  }
}
BENCHMARK(BM_SegmentWeightedSum);

void BM_AdamStepDense(benchmark::State& state) {
  Rng rng(5);
  ParameterStore store;
  Parameter* p = store.Create("p", 1024, 16, Init::kNormal01, &rng);
  Adam adam(1e-3);
  for (auto _ : state) {
    p->grad.Fill(0.01);
    p->dense_touched = true;
    adam.Step(&store, 1e-5);
  }
}
BENCHMARK(BM_AdamStepDense);

void BM_AdamStepSparse(benchmark::State& state) {
  Rng rng(6);
  ParameterStore store;
  Parameter* p = store.Create("p", 4096, 16, Init::kNormal01, &rng);
  Adam adam(1e-3);
  for (auto _ : state) {
    for (size_t r : {7u, 99u, 1000u, 2048u}) {
      for (size_t c = 0; c < 16; ++c) p->grad.at(r, c) = 0.01;
      p->touched_rows.insert(r);
    }
    adam.Step(&store, 1e-5);
  }
}
BENCHMARK(BM_AdamStepSparse);

}  // namespace
}  // namespace kgag

BENCHMARK_MAIN();
