// Shared configuration for the experiment-reproduction binaries. Every
// table/figure bench uses the same model hyper-parameters and dataset
// scale so results are comparable across binaries.
//
// Environment overrides (useful for quick smoke runs or larger studies):
//   KGAG_SCALE  — dataset scale factor (default 0.45)
//   KGAG_EPOCHS — training epochs for every model (default 12)
//   KGAG_SEED   — world seed (default 42)
#ifndef KGAG_BENCH_BENCH_UTIL_H_
#define KGAG_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "baselines/kgcn.h"
#include "baselines/mf.h"
#include "common/table_printer.h"
#include "models/config.h"

namespace kgag {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

inline double DatasetScale() { return EnvDouble("KGAG_SCALE", 0.45); }
inline int Epochs() { return EnvInt("KGAG_EPOCHS", 16); }
inline uint64_t WorldSeed() {
  return static_cast<uint64_t>(EnvInt("KGAG_SEED", 42));
}

/// KGAG hyper-parameters used throughout the benches (the "default" cell
/// of the Fig. 4/5 sweeps).
inline KgagConfig DefaultKgagConfig() {
  KgagConfig cfg;
  cfg.propagation.dim = 16;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 6;
  cfg.propagation.final_tanh = false;
  cfg.eval_tree_samples = 4;
  cfg.margin = 0.4;
  cfg.beta = 0.7;
  cfg.epochs = Epochs();
  cfg.pairs_per_epoch = 1600;
  cfg.seed = 1234;
  return cfg;
}

/// Embedding-baseline hyper-parameters (CF, MoSAN; also KgcnConfig::base).
inline MfConfig DefaultMfConfig() {
  MfConfig cfg;
  cfg.dim = 16;
  cfg.epochs = Epochs();
  cfg.pairs_per_epoch = 1600;
  cfg.seed = 1234;
  return cfg;
}

inline KgcnConfig DefaultKgcnConfig() {
  KgcnConfig cfg;
  cfg.base = DefaultMfConfig();
  cfg.propagation.dim = 16;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 6;
  return cfg;
}

/// Formats "<rec> / <hit>" the way Table II cells read.
inline std::string Cell(double rec, double hit) {
  return TablePrinter::Num(rec) + " / " + TablePrinter::Num(hit);
}

}  // namespace bench
}  // namespace kgag

#endif  // KGAG_BENCH_BENCH_UTIL_H_
