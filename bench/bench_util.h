// Shared configuration for the experiment-reproduction binaries. Every
// table/figure bench uses the same model hyper-parameters and dataset
// scale so results are comparable across binaries.
//
// Environment overrides (useful for quick smoke runs or larger studies):
//   KGAG_SCALE         — dataset scale factor (default 0.45)
//   KGAG_EPOCHS        — training epochs for every model (default 12)
//   KGAG_SEED          — world seed (default 42)
//   KGAG_TRAIN_THREADS — KGAG training worker threads (default 1);
//                        results are bit-identical at any value
#ifndef KGAG_BENCH_BENCH_UTIL_H_
#define KGAG_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <vector>

#include "baselines/kgcn.h"
#include "baselines/mf.h"
#include "common/table_printer.h"
#include "models/config.h"

namespace kgag {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

inline double DatasetScale() { return EnvDouble("KGAG_SCALE", 0.45); }
inline int Epochs() { return EnvInt("KGAG_EPOCHS", 16); }
inline uint64_t WorldSeed() {
  return static_cast<uint64_t>(EnvInt("KGAG_SEED", 42));
}

/// KGAG hyper-parameters used throughout the benches (the "default" cell
/// of the Fig. 4/5 sweeps).
inline KgagConfig DefaultKgagConfig() {
  KgagConfig cfg;
  cfg.propagation.dim = 16;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 6;
  cfg.propagation.final_tanh = false;
  cfg.eval_tree_samples = 4;
  cfg.margin = 0.4;
  cfg.beta = 0.7;
  cfg.epochs = Epochs();
  cfg.pairs_per_epoch = 1600;
  cfg.seed = 1234;
  cfg.train_threads = EnvInt("KGAG_TRAIN_THREADS", 1);
  return cfg;
}

/// Embedding-baseline hyper-parameters (CF, MoSAN; also KgcnConfig::base).
inline MfConfig DefaultMfConfig() {
  MfConfig cfg;
  cfg.dim = 16;
  cfg.epochs = Epochs();
  cfg.pairs_per_epoch = 1600;
  cfg.seed = 1234;
  return cfg;
}

inline KgcnConfig DefaultKgcnConfig() {
  KgcnConfig cfg;
  cfg.base = DefaultMfConfig();
  cfg.propagation.dim = 16;
  cfg.propagation.depth = 2;
  cfg.propagation.sample_size = 6;
  return cfg;
}

/// Formats "<rec> / <hit>" the way Table II cells read.
inline std::string Cell(double rec, double hit) {
  return TablePrinter::Num(rec) + " / " + TablePrinter::Num(hit);
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// \brief Append-style writer for the checked-in BENCH_*.json artifacts.
///
/// Tracks comma placement per nesting level so emitters stay linear
/// (Field/Begin/End in document order) instead of hand-assembling
/// separator logic; no external JSON dependency. Produces compact
/// one-line scopes — callers wanting readable diffs open one object or
/// array element per logical record.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* os) : os_(os) {}

  void BeginObject() {
    Sep();
    *os_ << "{";
    open_.push_back(false);
  }
  void BeginObject(const std::string& key) {
    KeyPrefix(key);
    *os_ << "{";
    open_.push_back(false);
  }
  void BeginArray(const std::string& key) {
    KeyPrefix(key);
    *os_ << "[";
    open_.push_back(false);
  }
  void EndObject() { Close('}'); }
  void EndArray() { Close(']'); }

  void Field(const std::string& key, const std::string& v) {
    KeyPrefix(key);
    *os_ << '"' << JsonEscape(v) << '"';
  }
  void Field(const std::string& key, const char* v) {
    Field(key, std::string(v));
  }
  void Field(const std::string& key, bool v) {
    KeyPrefix(key);
    *os_ << (v ? "true" : "false");
  }
  template <typename T>
  void Field(const std::string& key, T v) {
    KeyPrefix(key);
    *os_ << v;
  }
  /// Newline between records, for diffable checked-in artifacts.
  void Newline() { *os_ << "\n"; }

 private:
  void Sep() {
    if (!open_.empty()) {
      if (open_.back()) *os_ << ", ";
      open_.back() = true;
    }
  }
  void KeyPrefix(const std::string& key) {
    Sep();
    *os_ << '"' << JsonEscape(key) << "\": ";
  }
  void Close(char c) {
    *os_ << c;
    open_.pop_back();
  }

  std::ostream* os_;
  std::vector<bool> open_;
};

/// Flags shared by the sweep drivers:
///   --checkpoint_dir=DIR  root directory for snapshots (off when empty)
///   --checkpoint_every=N  extra mid-epoch snapshot cadence in batches
///   --resume              resume each sweep point from its newest snapshot
///   --train_threads=N     training worker threads (bit-identical results
///                         at any value; see DESIGN.md §9)
/// Each sweep point checkpoints into its own subdirectory (DIR/<tag>) so a
/// killed sweep resumes the interrupted point instead of cross-loading
/// state from a different hyper-parameter cell.
struct CheckpointFlags {
  std::string dir;
  int every = 0;
  bool resume = false;
  int train_threads = 0;  ///< 0 = keep DefaultKgagConfig's value

  /// Applies the flags to one sweep point's config. `point_tag` names the
  /// per-point subdirectory, e.g. "margin_0.4" or "depth_2".
  void Apply(KgagConfig* cfg, const std::string& point_tag) const {
    if (train_threads > 0) cfg->train_threads = train_threads;
    if (dir.empty()) return;
    cfg->checkpoint_dir = dir + "/" + point_tag;
    cfg->checkpoint_every_batches = every;
    cfg->resume = resume;
  }
};

inline CheckpointFlags ParseCheckpointFlags(int argc, char** argv) {
  CheckpointFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checkpoint_dir=", 0) == 0) {
      flags.dir = arg.substr(std::string("--checkpoint_dir=").size());
    } else if (arg.rfind("--checkpoint_every=", 0) == 0) {
      flags.every =
          std::atoi(arg.c_str() + std::string("--checkpoint_every=").size());
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg.rfind("--train_threads=", 0) == 0) {
      flags.train_threads =
          std::atoi(arg.c_str() + std::string("--train_threads=").size());
    }
  }
  return flags;
}

}  // namespace bench
}  // namespace kgag

#endif  // KGAG_BENCH_BENCH_UTIL_H_
