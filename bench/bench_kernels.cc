// bench_kernels: compute-backend benchmark harness. Times (a) the blocked
// GEMM against the preserved seed triple-loop kernel on the matmul shapes
// the Eq. (1)–(8) propagation and attention paths actually issue, and (b)
// end-to-end ranking-evaluation throughput serial vs ThreadPool-parallel,
// asserting the two produce bit-identical metrics. Emits machine-readable
// JSON (BENCH_kernels.json when run from the repo root) so successive PRs
// can be compared on the same perf trajectory.
//
// Usage: bench_kernels [--smoke] [--acceptance] [--out PATH] [--threads N]
//   --smoke       one tiny iteration per case (CI wiring check, ~1s)
//   --acceptance  time ONLY the PR-1 acceptance GEMM shape (512x64x64)
//                 with long reps, and write a small JSON carrying
//                 obs_enabled — run it once in an obs-ON build and once
//                 in an obs-OFF build, then feed both files to
//                 tools/check_obs_overhead.py to gate the overhead budget
//   --out         output path (default ./BENCH_kernels.json)
//   --threads     pool size for the parallel-eval case, clamped to
//                 hardware_concurrency (default 0 = all hardware threads)
//
// Observability: with KGAG_OBS_ENABLED builds this binary installs the
// default instrumentation, appends a "bench_kernels" snapshot to the sink
// named by KGAG_METRICS_JSONL, and (when KGAG_TRACE=1) exports the span
// timeline to KGAG_TRACE_OUT (default trace.json).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "eval/ranking_evaluator.h"
#include "obs/obs.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace kgag {
namespace {

struct Options {
  bool smoke = false;
  bool acceptance = false;
  std::string out = "BENCH_kernels.json";
  size_t threads = 0;  // 0 = hardware_concurrency (honest local numbers)
};

Tensor RandomTensor(size_t rows, size_t cols, Rng* rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng->Normal(0, 1);
  return t;
}

/// Best-of-`reps` seconds-per-call, with the iteration count calibrated so
/// one rep runs for at least `min_secs`.
template <typename Fn>
double TimeBest(const Options& opt, Fn&& fn, double min_secs = 0.15,
                int reps = 3) {
  if (opt.smoke) {
    Stopwatch sw;
    fn();
    return sw.ElapsedSeconds();
  }
  size_t iters = 1;
  while (true) {
    Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) fn();
    const double secs = sw.ElapsedSeconds();
    if (secs >= min_secs) break;
    iters *= 2;
  }
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, sw.ElapsedSeconds() / static_cast<double>(iters));
  }
  return best;
}

struct MatmulCase {
  const char* op;    // "matmul" | "matmul_trans_a" | "matmul_trans_b"
  const char* role;  // which hot path issues this shape
  size_t m, k, n;    // op(A): m×k, op(B): k×n
};

struct MatmulRow {
  MatmulCase c;
  double seed_ns = 0.0;
  double blocked_ns = 0.0;
  double speedup = 0.0;
  double gflops_blocked = 0.0;
  bool close = false;
};

/// Seed-equivalent MatMul*: fresh zeroed output + the preserved naive
/// kernel, matching what the seed's MatMul functions did end to end.
Tensor SeedCall(const MatmulCase& c, const Tensor& a, const Tensor& b) {
  if (std::strcmp(c.op, "matmul_trans_a") == 0) {
    Tensor out(a.cols(), b.cols());
    kernels::GemmNaive(true, false, a.cols(), b.cols(), a.rows(), a.data(),
                       a.cols(), b.data(), b.cols(), out.data(), out.cols());
    return out;
  }
  if (std::strcmp(c.op, "matmul_trans_b") == 0) {
    Tensor out(a.rows(), b.rows());
    kernels::GemmNaive(false, true, a.rows(), b.rows(), a.cols(), a.data(),
                       a.cols(), b.data(), b.cols(), out.data(), out.cols());
    return out;
  }
  Tensor out(a.rows(), b.cols());
  kernels::GemmNaive(false, false, a.rows(), b.cols(), a.cols(), a.data(),
                     a.cols(), b.data(), b.cols(), out.data(), out.cols());
  return out;
}

Tensor BlockedCall(const MatmulCase& c, const Tensor& a, const Tensor& b) {
  if (std::strcmp(c.op, "matmul_trans_a") == 0) return MatMulTransA(a, b);
  if (std::strcmp(c.op, "matmul_trans_b") == 0) return MatMulTransB(a, b);
  return MatMul(a, b);
}

std::vector<MatmulRow> RunMatmulCases(const Options& opt) {
  // Stored shapes per op: for trans_a A is k×m, for trans_b B is n×k.
  const std::vector<MatmulCase> cases = {
      {"matmul", "propagation batch (P*K x d · d x d)", 512, 64, 64},
      {"matmul", "member reps batch (P x d · d x d)", 128, 64, 64},
      {"matmul", "attention single query (1 x d · d x d)", 1, 64, 64},
      {"matmul_trans_b", "neighbor scores (P x d · (K x d)^T)", 512, 64, 64},
      {"matmul_trans_a", "weight gradient ((P x d)^T · P x d)", 64, 512, 64},
      {"matmul", "forward-looking large (256^3)", 256, 256, 256},
  };
  std::vector<MatmulRow> rows;
  Rng rng(7);
  for (const MatmulCase& c : cases) {
    MatmulRow row;
    const bool ta = std::strcmp(c.op, "matmul_trans_a") == 0;
    const bool tb = std::strcmp(c.op, "matmul_trans_b") == 0;
    const size_t scale = opt.smoke ? 8 : 1;
    MatmulCase sc = c;
    sc.m = std::max<size_t>(1, c.m / scale);
    Tensor a = ta ? RandomTensor(sc.k, sc.m, &rng)
                  : RandomTensor(sc.m, sc.k, &rng);
    Tensor b = tb ? RandomTensor(sc.n, sc.k, &rng)
                  : RandomTensor(sc.k, sc.n, &rng);
    row.c = sc;
    row.close = AllClose(SeedCall(sc, a, b), BlockedCall(sc, a, b), 1e-9,
                         1e-9);
    row.seed_ns = 1e9 * TimeBest(opt, [&] {
      Tensor out = SeedCall(sc, a, b);
      asm volatile("" : : "g"(out.data()) : "memory");
    });
    row.blocked_ns = 1e9 * TimeBest(opt, [&] {
      Tensor out = BlockedCall(sc, a, b);
      asm volatile("" : : "g"(out.data()) : "memory");
    });
    row.speedup = row.seed_ns / row.blocked_ns;
    const double madds = static_cast<double>(sc.m) * sc.k * sc.n;
    row.gflops_blocked = 2.0 * madds / row.blocked_ns;  // ns -> GFLOP/s
    std::cout << c.op << " m=" << sc.m << " k=" << sc.k << " n=" << sc.n
              << ": seed " << row.seed_ns / 1e3 << " us, blocked "
              << row.blocked_ns / 1e3 << " us, speedup " << row.speedup
              << "x, " << row.gflops_blocked << " GFLOP/s"
              << (row.close ? "" : "  [MISMATCH]") << "\n";
    rows.push_back(row);
  }
  return rows;
}

/// Read-only scorer shaped like the real model's eval path: one d×d
/// projection of the group embedding, then scores against every item
/// embedding (MatMul + MatMulTransB per group). Deterministic and
/// stateless per call, hence thread-safe.
class EmbeddingScorer : public GroupScorer {
 public:
  EmbeddingScorer(size_t num_groups, size_t num_items, size_t dim)
      : rng_(123),
        group_emb_(RandomTensor(num_groups, dim, &rng_)),
        item_emb_(RandomTensor(num_items, dim, &rng_)),
        w_(RandomTensor(dim, dim, &rng_)) {}

  std::vector<double> ScoreGroup(GroupId g,
                                 std::span<const ItemId> items) override {
    const Tensor projected = MatMul(group_emb_.RowAt(g), w_);
    const Tensor scores = MatMulTransB(projected, item_emb_);  // 1 x items
    std::vector<double> out(items.size());
    for (size_t i = 0; i < items.size(); ++i) out[i] = scores[items[i]];
    return out;
  }

 private:
  Rng rng_;
  const Tensor group_emb_;
  const Tensor item_emb_;
  const Tensor w_;
};

struct EvalRow {
  size_t groups = 0;
  size_t pool = 0;
  size_t threads = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

EvalRow RunEvalCase(const Options& opt) {
  EvalRow row;
  // MovieLens-like sweep scale: every test group ranked against the full
  // test-item pool (§IV-B protocol). Sized so per-group work dominates
  // scheduling overhead even at high thread counts.
  row.groups = opt.smoke ? 6 : 512;
  row.pool = opt.smoke ? 12 : 600;
  // Oversubscribing a smaller machine only measures scheduler thrash, so
  // an explicit --threads is clamped to the hardware (0 = use all of it).
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  row.threads = opt.threads == 0 ? hw : std::min(opt.threads, hw);
  const size_t dim = 64;

  GroupRecDataset ds;
  ds.name = "bench-eval";
  std::vector<Interaction> interactions;
  for (size_t g = 0; g < row.groups; ++g) {
    for (size_t j = 0; j < 3; ++j) {
      interactions.push_back(
          {static_cast<GroupId>(g),
           static_cast<ItemId>((g * 7 + j * 131) % row.pool)});
    }
    // Pad the pool so its size is exactly row.pool items.
    interactions.push_back(
        {static_cast<GroupId>(g), static_cast<ItemId>(g % row.pool)});
  }
  for (size_t v = 0; v < row.pool; ++v) {
    interactions.push_back({0, static_cast<ItemId>(v)});
  }

  EmbeddingScorer scorer(row.groups, row.pool, dim);
  RankingEvaluator serial_eval(&ds, 5);
  const EvalResult serial = serial_eval.Evaluate(&scorer, interactions);
  row.serial_ms =
      1e3 * TimeBest(opt, [&] {
        EvalResult r = serial_eval.Evaluate(&scorer, interactions);
        asm volatile("" : : "g"(&r) : "memory");
      });

  ThreadPool pool(row.threads);
  RankingEvaluator parallel_eval(&ds, 5);
  parallel_eval.set_thread_pool(&pool);
  const EvalResult parallel = parallel_eval.Evaluate(&scorer, interactions);
  row.parallel_ms =
      1e3 * TimeBest(opt, [&] {
        EvalResult r = parallel_eval.Evaluate(&scorer, interactions);
        asm volatile("" : : "g"(&r) : "memory");
      });

  row.speedup = row.serial_ms / row.parallel_ms;
  row.bit_identical = serial.hit_at_k == parallel.hit_at_k &&
                      serial.recall_at_k == parallel.recall_at_k &&
                      serial.ndcg_at_k == parallel.ndcg_at_k &&
                      serial.num_groups == parallel.num_groups;
  std::cout << "eval " << row.groups << " groups x " << row.pool
            << " items: serial " << row.serial_ms << " ms, parallel("
            << row.threads << ") " << row.parallel_ms << " ms, speedup "
            << row.speedup << "x, bit_identical "
            << (row.bit_identical ? "true" : "false") << "\n";
  return row;
}

/// The obs-overhead gate: the PR-1 acceptance GEMM shape (512x64x64
/// "propagation batch" matmul) timed with longer reps than the sweep so
/// the enabled-vs-disabled delta is measurable above run-to-run noise.
/// The counter increments in kernels::Gemm are the only instrumentation
/// this shape crosses, which is exactly what the <2% budget bounds.
int RunAcceptance(const Options& opt) {
  const MatmulCase c = {"matmul", "propagation batch (P*K x d · d x d)",
                        512, 64, 64};
  Rng rng(7);
  Tensor a = RandomTensor(c.m, c.k, &rng);
  Tensor b = RandomTensor(c.k, c.n, &rng);
  const double ns = 1e9 * TimeBest(
                              opt,
                              [&] {
                                Tensor out = BlockedCall(c, a, b);
                                asm volatile("" : : "g"(out.data())
                                             : "memory");
                              },
                              /*min_secs=*/0.4, /*reps=*/7);
  const double gflops = 2.0 * static_cast<double>(c.m) * c.k * c.n / ns;
  std::cout << "acceptance " << c.op << " m=" << c.m << " k=" << c.k
            << " n=" << c.n << ": " << ns / 1e3 << " us, " << gflops
            << " GFLOP/s, obs_enabled="
            << (KGAG_OBS_ACTIVE ? "true" : "false") << "\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  // min_secs/reps describe the measurement floor so downstream overhead
  // checks (tools/check_obs_overhead.py) can reject runs too short to
  // trust.
  out << "{\n  \"bench\": \"bench_kernels_acceptance\",\n"
      << "  \"obs_enabled\": " << (KGAG_OBS_ACTIVE ? "true" : "false")
      << ",\n  \"smoke\": " << (opt.smoke ? "true" : "false")
      << ",\n  \"op\": \"" << c.op << "\",\n  \"m\": " << c.m
      << ", \"k\": " << c.k << ", \"n\": " << c.n
      << ",\n  \"min_secs\": " << (opt.smoke ? 0.0 : 0.4)
      << ", \"reps\": " << (opt.smoke ? 1 : 7)
      << ",\n  \"blocked_ns\": " << ns << ",\n  \"gflops\": " << gflops
      << "\n}\n";
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

std::string Json(const Options& opt, const std::vector<MatmulRow>& rows,
                 const EvalRow& eval) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"bench_kernels\",\n";
  os << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n";
  os << "  \"obs_enabled\": " << (KGAG_OBS_ACTIVE ? "true" : "false")
     << ",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "  \"matmul\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const MatmulRow& r = rows[i];
    os << "    {\"op\": \"" << r.c.op << "\", \"role\": \"" << r.c.role
       << "\", \"m\": " << r.c.m << ", \"k\": " << r.c.k
       << ", \"n\": " << r.c.n << ", \"seed_ns\": " << r.seed_ns
       << ", \"blocked_ns\": " << r.blocked_ns
       << ", \"speedup\": " << r.speedup
       << ", \"gflops_blocked\": " << r.gflops_blocked
       << ", \"allclose\": " << (r.close ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"eval\": {\"groups\": " << eval.groups
     << ", \"pool\": " << eval.pool << ", \"threads\": " << eval.threads
     << ", \"serial_ms\": " << eval.serial_ms
     << ", \"parallel_ms\": " << eval.parallel_ms
     << ", \"speedup\": " << eval.speedup << ", \"bit_identical\": "
     << (eval.bit_identical ? "true" : "false") << "}\n";
  os << "}\n";
  return os.str();
}

/// Obs-enabled builds flush a metrics snapshot and (if KGAG_TRACE=1) the
/// span timeline when the run ends; a no-op otherwise.
void FlushObsArtifacts() {
#if KGAG_OBS_ACTIVE
  KGAG_OBS_SNAPSHOT("bench_kernels");
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  if (rec.enabled() && rec.size() > 0) {
    const char* trace_out = std::getenv("KGAG_TRACE_OUT");
    const std::string path =
        (trace_out != nullptr && trace_out[0] != '\0') ? trace_out
                                                       : "trace.json";
    const Status s = rec.ExportChromeTracing(path);
    if (s.ok()) {
      std::cout << "wrote " << path << " (" << rec.size() << " spans, "
                << rec.dropped() << " dropped)\n";
    } else {
      std::cerr << s.ToString() << "\n";
    }
  }
#endif
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--acceptance") {
      opt.acceptance = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_kernels [--smoke] [--acceptance]"
                << " [--out PATH] [--threads N]\n";
      return 2;
    }
  }
  KGAG_OBS_ONLY(obs::InstallDefaultInstrumentation();)

  if (opt.acceptance) {
    const int rc = RunAcceptance(opt);
    FlushObsArtifacts();
    return rc;
  }

  const std::vector<MatmulRow> rows = RunMatmulCases(opt);
  const EvalRow eval = RunEvalCase(opt);

  bool ok = eval.bit_identical;
  for (const MatmulRow& r : rows) ok = ok && r.close;

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  out << Json(opt, rows, eval);
  std::cout << "wrote " << opt.out << "\n";
  FlushObsArtifacts();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) { return kgag::Main(argc, argv); }
