// Regenerates Table III: ablations of KGAG — KGAG-KG (no propagation
// block), KGAG-SP (no self-persistence), KGAG-PI (no peer influence) and
// KGAG (BPR) (classic BPR instead of the sigmoid-margin loss).
//
// The paper runs this on MovieLens-20M-Rand. We report Rand *and* Yelp:
// on our synthetic Rand substitute, plain embeddings memorize the dense
// group-item co-likes well enough that the propagation block does not pay
// off (see EXPERIMENTS.md), while the Yelp corpus — one interaction per
// group, KG-centric communities — is the regime the ablation story is
// about, and reproduces the paper's ordering.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

struct PaperRow {
  const char* variant;
  double rec, hit;  // Table III (Rand)
};

constexpr PaperRow kPaper[] = {
    {"KGAG", 0.1627, 0.5497},     {"KGAG-KG", 0.1530, 0.4636},
    {"KGAG-SP", 0.1567, 0.5166},  {"KGAG-PI", 0.1582, 0.5298},
    {"KGAG (BPR)", 0.1525, 0.5099},
};

KgagConfig VariantConfig(const std::string& variant) {
  KgagConfig cfg = bench::DefaultKgagConfig();
  if (variant == "KGAG-KG") cfg.use_kg = false;
  if (variant == "KGAG-SP") cfg.use_sp = false;
  if (variant == "KGAG-PI") cfg.use_pi = false;
  if (variant == "KGAG (BPR)") cfg.group_loss = GroupLossKind::kBpr;
  return cfg;
}

void Run() {
  GroupRecDataset rand_ds =
      MakeMovieLensRandDataset(bench::WorldSeed(), bench::DatasetScale());
  GroupRecDataset yelp_ds =
      MakeYelpDataset(bench::WorldSeed(), bench::DatasetScale());

  std::printf(
      "Table III — ablations (rec@5 / hit@5); paper column is "
      "MovieLens-20M-Rand\n\n");
  TablePrinter table(
      {"Variant", "Rand ours", "Rand paper", "Yelp ours (extra)"});
  std::vector<double> rand_hits, yelp_hits;
  for (const PaperRow& row : kPaper) {
    std::vector<std::string> out_row{row.variant};
    for (GroupRecDataset* ds : {&rand_ds, &yelp_ds}) {
      Stopwatch sw;
      auto model = KgagModel::Create(ds, VariantConfig(row.variant));
      KGAG_CHECK(model.ok()) << model.status().ToString();
      (*model)->Fit();
      RankingEvaluator eval(ds, 5);
      EvalResult r = eval.EvaluateTest(model->get());
      std::fprintf(stderr, "  [%s on %s: rec=%.4f hit=%.4f, %.0fs]\n",
                   row.variant, ds == &rand_ds ? "Rand" : "Yelp",
                   r.recall_at_k, r.hit_at_k, sw.ElapsedSeconds());
      out_row.push_back(bench::Cell(r.recall_at_k, r.hit_at_k));
      if (ds == &rand_ds) {
        rand_hits.push_back(r.hit_at_k);
        out_row.push_back(bench::Cell(row.rec, row.hit));
      } else {
        yelp_hits.push_back(r.hit_at_k);
      }
    }
    table.AddRow(out_row);
  }
  table.Print(std::cout);

  std::printf("\nShape checks (paper §IV-F), evaluated on Yelp — the\n"
              "KG-dependent regime of our substitute corpora:\n");
  std::printf("  Removing the KG hurts (KGAG > KGAG-KG): %.4f vs %.4f -> %s\n",
              yelp_hits[0], yelp_hits[1],
              yelp_hits[0] > yelp_hits[1] ? "OK" : "MISMATCH");
  std::printf("  Margin loss beats BPR (KGAG > KGAG(BPR)): %.4f vs %.4f -> "
              "%s\n",
              yelp_hits[0], yelp_hits[4],
              yelp_hits[0] >= yelp_hits[4] ? "OK" : "MISMATCH");
  std::printf("  KGAG-KG is the weakest ablation: %s\n",
              (yelp_hits[1] <= yelp_hits[2] && yelp_hits[1] <= yelp_hits[3] &&
               yelp_hits[1] <= yelp_hits[4])
                  ? "OK"
                  : "MISMATCH");
  std::printf(
      "  Note: on our synthetic Rand corpus the propagation block does not\n"
      "  pay off (KGAG-KG %.4f vs KGAG %.4f) — dense group-item co-likes\n"
      "  are memorizable by plain embeddings; see EXPERIMENTS.md.\n",
      rand_hits[1], rand_hits[0]);
}

}  // namespace
}  // namespace kgag

int main() {
  kgag::Stopwatch sw;
  kgag::Run();
  std::printf("\n[table3_ablation completed in %.1fs]\n", sw.ElapsedSeconds());
  return 0;
}
