// Open-loop Poisson-arrival load client for the serving data plane
// (DESIGN.md §13). Drives a NetServer over real sockets at a FIXED
// offered rate — arrivals are scheduled from an exponential
// inter-arrival process up front and fired on schedule regardless of
// how fast responses come back (requests pipeline on each connection).
// Latency is measured from the SCHEDULED arrival time, not the send
// time, so queueing a client falls into under overload is charged to
// the server (wrk2-style coordinated-omission correction).
//
// Header-only; used by bench_serve --net and the CI network smoke.
#ifndef KGAG_BENCH_NET_CLIENT_H_
#define KGAG_BENCH_NET_CLIENT_H_

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/net_protocol.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace bench {

struct OpenLoopOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Parallel connections; requests round-robin across them and
  /// pipeline within each, so offered load is not capped by latency.
  size_t connections = 8;
  /// Requests fired at this level.
  size_t requests = 256;
  /// Target arrival rate. The schedule is Poisson: exponential
  /// inter-arrival gaps with mean 1/offered_qps.
  double offered_qps = 100.0;
  /// Relative deadline stamped on every request (0 = none): the knob
  /// that turns sustained overload into visible shedding instead of an
  /// unbounded queue.
  int64_t deadline_us = 0;
  uint64_t seed = 1;
};

struct OpenLoopResult {
  double offered_qps = 0.0;  ///< nominal (requested) rate
  /// sent / actual schedule span. A sampled Poisson schedule's span
  /// deviates from nominal by ~1/sqrt(n); saturation checks should
  /// compare achieved against THIS rate, not the nominal one.
  double empirical_offered_qps = 0.0;
  size_t sent = 0;
  size_t ok = 0;
  size_t shed = 0;    ///< DeadlineExceeded + Overloaded wire statuses
  size_t errors = 0;  ///< transport failures + unexpected wire statuses
  double wall_s = 0.0;
  double achieved_qps = 0.0;  ///< completed-OK rate over the wall window
  double p50_us = 0.0;        ///< latency from scheduled arrival, OK only
  double p99_us = 0.0;
  double p999_us = 0.0;
};

namespace netclient_internal {

inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace netclient_internal

/// Deterministic request pool for load generation: member sets of 2-4
/// users below `num_users`, k=10. Small enough to cycle, varied enough
/// to defeat trivial full-batch coalescing.
inline std::vector<serve::TopKRequest> MakeNetRequestPool(int32_t num_users,
                                                          size_t n,
                                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::TopKRequest> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    serve::TopKRequest r;
    const int size = static_cast<int>(rng.UniformInt(2, 4));
    for (int m = 0; m < size; ++m) {
      r.members.push_back(
          static_cast<UserId>(rng.UniformInt(0, num_users - 1)));
    }
    r.k = 10;
    pool.push_back(std::move(r));
  }
  return pool;
}

/// Runs one offered-QPS level against a live server. Returns the level
/// result; `ok==0 && errors==sent` usually means the server is gone.
inline OpenLoopResult RunOpenLoopLevel(
    const OpenLoopOptions& options,
    const std::vector<serve::TopKRequest>& pool) {
  using Clock = std::chrono::steady_clock;
  OpenLoopResult result;
  result.offered_qps = options.offered_qps;
  result.sent = options.requests;
  if (pool.empty() || options.requests == 0 || options.offered_qps <= 0.0) {
    return result;
  }

  // The full Poisson arrival schedule, fixed before any traffic flows:
  // an open-loop client never lets server backpressure reshape the
  // offered process.
  Rng rng(options.seed * 2654435761u + 7);
  std::vector<double> arrival_s(options.requests);
  double t = 0.0;
  for (size_t i = 0; i < options.requests; ++i) {
    const double u = rng.Uniform(1e-12, 1.0);
    t += -std::log(u) / options.offered_qps;
    arrival_s[i] = t;
  }
  result.empirical_offered_qps =
      arrival_s.back() == 0.0
          ? 0.0
          : static_cast<double>(options.requests) / arrival_s.back();

  const size_t conns = std::max<size_t>(1, options.connections);
  struct ConnStats {
    std::vector<double> latencies_us;
    size_t ok = 0, shed = 0, errors = 0;
    Clock::time_point last_done;
  };
  std::vector<ConnStats> stats(conns);

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(2 * conns);
  for (size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      ConnStats& st = stats[c];
      st.last_done = start;
      Result<int> fd = serve::ConnectTcp(options.host, options.port);
      if (!fd.ok()) {
        for (size_t i = c; i < options.requests; i += conns) ++st.errors;
        return;
      }
      // Writer fires this connection's share of the schedule on time;
      // the reader half (below, same thread pattern as the server's
      // ordered writer) runs concurrently so a slow response never
      // delays the next send.
      std::thread writer([&] {
        for (size_t i = c; i < options.requests; i += conns) {
          const Clock::time_point due =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(arrival_s[i]));
          std::this_thread::sleep_until(due);
          serve::TopKRequest request = pool[i % pool.size()];
          request.deadline_us = options.deadline_us;
          if (!serve::WriteFrame(*fd, serve::EncodeTopKRequest(request))) {
            return;  // reader will see the failure too
          }
        }
        // Half-close: tells the server this connection is done sending
        // while responses continue to flow back.
        ::shutdown(*fd, SHUT_WR);
      });
      for (size_t i = c; i < options.requests; i += conns) {
        std::vector<uint8_t> payload;
        if (!serve::ReadFrame(*fd, &payload)) {
          ++st.errors;
          continue;  // count every unanswered request as an error
        }
        const Clock::time_point done = Clock::now();
        st.last_done = done;
        Result<serve::WireResponse> resp =
            serve::DecodeTopKResponse(payload.data(), payload.size());
        if (!resp.ok()) {
          ++st.errors;
          continue;
        }
        if (resp->status == serve::WireStatus::kOk) {
          ++st.ok;
          const double scheduled_us = arrival_s[i] * 1e6;
          const double done_us =
              std::chrono::duration_cast<
                  std::chrono::duration<double, std::micro>>(done - start)
                  .count();
          st.latencies_us.push_back(done_us - scheduled_us);
        } else if (resp->status == serve::WireStatus::kDeadlineExceeded ||
                   resp->status == serve::WireStatus::kOverloaded) {
          ++st.shed;
        } else {
          ++st.errors;
        }
      }
      writer.join();
      ::close(*fd);
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<double> latencies;
  Clock::time_point last_done = start;
  for (ConnStats& st : stats) {
    result.ok += st.ok;
    result.shed += st.shed;
    result.errors += st.errors;
    latencies.insert(latencies.end(), st.latencies_us.begin(),
                     st.latencies_us.end());
    last_done = std::max(last_done, st.last_done);
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_us = netclient_internal::PercentileSorted(latencies, 0.50);
  result.p99_us = netclient_internal::PercentileSorted(latencies, 0.99);
  result.p999_us = netclient_internal::PercentileSorted(latencies, 0.999);
  result.wall_s =
      std::chrono::duration<double>(last_done - start).count();
  result.achieved_qps =
      result.wall_s == 0.0 ? 0.0
                           : static_cast<double>(result.ok) / result.wall_s;
  return result;
}

}  // namespace bench
}  // namespace kgag

#endif  // KGAG_BENCH_NET_CLIENT_H_
