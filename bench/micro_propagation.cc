// Micro-benchmarks of the propagation pipeline: sampling, tape-mode
// forward+backward and batched inference (the §III-E complexity claims:
// per-instance cost grows with K^H, not with corpus size).
#include <benchmark/benchmark.h>

#include "data/synthetic/standard_datasets.h"
#include "kg/collaborative_kg.h"
#include "models/propagation.h"

namespace kgag {
namespace {

struct Fixture {
  Fixture() : rng(7) {
    GroupRecDataset ds = MakeMovieLensRandDataset(11, 0.2);
    std::vector<std::pair<int32_t, int32_t>> interactions;
    for (const Interaction& it : ds.user_item.ToPairs()) {
      interactions.emplace_back(it.row, it.item);
    }
    auto built = BuildCollaborativeKg(ds.kg_triples, ds.num_entities,
                                      ds.num_relations, ds.num_users,
                                      ds.item_to_entity, interactions);
    KGAG_CHECK(built.ok());
    ckg = std::move(*built);
  }

  PropagationEngine MakeEngine(int depth, int k, ParameterStore* store,
                               Parameter** table) {
    PropagationConfig cfg;
    cfg.depth = depth;
    cfg.sample_size = k;
    cfg.dim = 16;
    *table = store->Create("ent", ckg.graph.num_entities(), 16,
                           Init::kNormal01, &rng);
    return PropagationEngine(&ckg.graph, *table, store, cfg, &rng);
  }

  Rng rng;
  CollaborativeKg ckg;
};

void BM_SampleTree(benchmark::State& state) {
  Fixture f;
  NeighborSampler sampler(&f.ckg.graph, static_cast<int>(state.range(1)));
  Rng rng(3);
  for (auto _ : state) {
    SampledTree t =
        sampler.SampleTree(0, static_cast<int>(state.range(0)), &rng);
    benchmark::DoNotOptimize(t.entities.back().size());
  }
}
BENCHMARK(BM_SampleTree)->Args({1, 4})->Args({2, 4})->Args({2, 8})->Args({3, 4});

void BM_PropagateOnTape(benchmark::State& state) {
  Fixture f;
  ParameterStore store;
  Parameter* table = nullptr;
  PropagationEngine engine = f.MakeEngine(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)),
                                          &store, &table);
  Rng rng(5);
  SampledTree tree = engine.SampleTree(0, &rng);
  for (auto _ : state) {
    Tape tape;
    Var q = tape.Gather(table, {1});
    Var rep = engine.PropagateOnTape(&tape, tree, q);
    Var loss = tape.Sum(rep);
    tape.Backward(loss);
    store.ZeroGrads();
    benchmark::DoNotOptimize(tape.value(loss).item());
  }
}
BENCHMARK(BM_PropagateOnTape)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 4});

void BM_PropagateBatch(benchmark::State& state) {
  Fixture f;
  ParameterStore store;
  Parameter* table = nullptr;
  PropagationEngine engine = f.MakeEngine(2, 6, &store, &table);
  Rng rng(5);
  SampledTree tree = engine.SampleTree(0, &rng);
  const size_t p = static_cast<size_t>(state.range(0));
  Tensor queries(p, 16);
  for (size_t i = 0; i < queries.size(); ++i) queries[i] = rng.Normal(0, 1);
  for (auto _ : state) {
    Tensor reps = engine.PropagateBatch(tree, queries);
    benchmark::DoNotOptimize(reps.data());
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_PropagateBatch)->Arg(1)->Arg(32)->Arg(128);

}  // namespace
}  // namespace kgag

BENCHMARK_MAIN();
