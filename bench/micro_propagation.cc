// Micro-benchmarks of the propagation pipeline: sampling, tape-mode
// forward+backward and batched inference (the §III-E complexity claims:
// per-instance cost grows with K^H, not with corpus size).
//
// In addition to the normal google-benchmark console output, the custom
// main below collects every run and writes BENCH_propagation.json (path
// overridable with KGAG_BENCH_OUT) so the propagation trend is a
// checked-in artifact like BENCH_kernels.json. All google-benchmark
// flags (--benchmark_filter, --benchmark_min_time, ...) still work.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "data/synthetic/standard_datasets.h"
#include "kg/collaborative_kg.h"
#include "models/propagation.h"

namespace kgag {
namespace {

struct Fixture {
  Fixture() : rng(7) {
    GroupRecDataset ds = MakeMovieLensRandDataset(11, 0.2);
    std::vector<std::pair<int32_t, int32_t>> interactions;
    for (const Interaction& it : ds.user_item.ToPairs()) {
      interactions.emplace_back(it.row, it.item);
    }
    auto built = BuildCollaborativeKg(ds.kg_triples, ds.num_entities,
                                      ds.num_relations, ds.num_users,
                                      ds.item_to_entity, interactions);
    KGAG_CHECK(built.ok());
    ckg = std::move(*built);
  }

  PropagationEngine MakeEngine(int depth, int k, ParameterStore* store,
                               Parameter** table) {
    PropagationConfig cfg;
    cfg.depth = depth;
    cfg.sample_size = k;
    cfg.dim = 16;
    *table = store->Create("ent", ckg.graph.num_entities(), 16,
                           Init::kNormal01, &rng);
    return PropagationEngine(&ckg.graph, *table, store, cfg, &rng);
  }

  Rng rng;
  CollaborativeKg ckg;
};

void BM_SampleTree(benchmark::State& state) {
  Fixture f;
  NeighborSampler sampler(&f.ckg.graph, static_cast<int>(state.range(1)));
  Rng rng(3);
  for (auto _ : state) {
    SampledTree t =
        sampler.SampleTree(0, static_cast<int>(state.range(0)), &rng);
    benchmark::DoNotOptimize(t.entities.back().size());
  }
}
BENCHMARK(BM_SampleTree)->Args({1, 4})->Args({2, 4})->Args({2, 8})->Args({3, 4});

void BM_PropagateOnTape(benchmark::State& state) {
  Fixture f;
  ParameterStore store;
  Parameter* table = nullptr;
  PropagationEngine engine = f.MakeEngine(static_cast<int>(state.range(0)),
                                          static_cast<int>(state.range(1)),
                                          &store, &table);
  Rng rng(5);
  SampledTree tree = engine.SampleTree(0, &rng);
  for (auto _ : state) {
    Tape tape;
    Var q = tape.Gather(table, {1});
    Var rep = engine.PropagateOnTape(&tape, tree, q);
    Var loss = tape.Sum(rep);
    tape.Backward(loss);
    store.ZeroGrads();
    benchmark::DoNotOptimize(tape.value(loss).item());
  }
}
BENCHMARK(BM_PropagateOnTape)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 4});

void BM_PropagateBatch(benchmark::State& state) {
  Fixture f;
  ParameterStore store;
  Parameter* table = nullptr;
  PropagationEngine engine = f.MakeEngine(2, 6, &store, &table);
  Rng rng(5);
  SampledTree tree = engine.SampleTree(0, &rng);
  const size_t p = static_cast<size_t>(state.range(0));
  Tensor queries(p, 16);
  for (size_t i = 0; i < queries.size(); ++i) queries[i] = rng.Normal(0, 1);
  for (auto _ : state) {
    Tensor reps = engine.PropagateBatch(tree, queries);
    benchmark::DoNotOptimize(reps.data());
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_PropagateBatch)->Arg(1)->Arg(32)->Arg(128);

/// Console reporter that additionally collects per-iteration runs for the
/// JSON artifact (aggregates and errored runs are skipped).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
    int64_t iterations = 0;
    double items_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Row row;
      row.name = r.benchmark_name();
      // Adjusted times are per-iteration in the run's time unit; the
      // micro benches all report in ns (the library default).
      row.real_ns = r.GetAdjustedRealTime();
      row.cpu_ns = r.GetAdjustedCPUTime();
      row.iterations = static_cast<int64_t>(r.iterations);
      auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) row.items_per_second = it->second;
      rows.push_back(row);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Row> rows;
};

int WriteJson(const std::string& path,
              const std::vector<CollectingReporter::Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  bench::JsonWriter w(&out);
  w.BeginObject();
  w.Newline();
  w.Field("bench", "micro_propagation");
  w.Newline();
  w.Field("hardware_threads", std::thread::hardware_concurrency());
  w.Newline();
  w.BeginArray("runs");
  w.Newline();
  for (const CollectingReporter::Row& r : rows) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("real_ns", r.real_ns);
    w.Field("cpu_ns", r.cpu_ns);
    w.Field("iterations", r.iterations);
    if (r.items_per_second > 0.0) {
      w.Field("items_per_second", r.items_per_second);
    }
    w.EndObject();
    w.Newline();
  }
  w.EndArray();
  w.Newline();
  w.EndObject();
  w.Newline();
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  kgag::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* out = std::getenv("KGAG_BENCH_OUT");
  return kgag::WriteJson(out != nullptr && out[0] != '\0'
                             ? out
                             : "BENCH_propagation.json",
                         reporter.rows);
}
