// bench_train: deterministic data-parallel training harness (DESIGN.md
// §9). Measures (a) the arena-backed tape against the heap-allocating
// baseline at one thread, (b) epoch throughput across thread counts with
// the fixed-shard TrainEpoch, and (c) PROVES the determinism contract:
// after several epochs the parameters, Adam moments, RNG state and
// batcher state must be byte-identical for every thread count (and for
// arena on/off). Any divergence is a hard failure (nonzero exit), which
// is how CI gates the parallel path.
//
// Usage: bench_train [--smoke] [--acceptance] [--threads N]
//                    [--shard_size N] [--out PATH]
//   --smoke       tiny dataset + single timing rep (CI wiring check)
//   --acceptance  bit-identity gate only: train 3 epochs at 1, 2 and N
//                 threads and compare training-state bytes; no timing
//                 sweep, no JSON artifact unless --out is given
//   --threads     max worker count exercised (default 8)
//   --shard_size  examples per shard (default KgagConfig default)
//   --out         output path (default ./BENCH_train.json)
//
// Speedup numbers are only meaningful on multi-core hardware; the JSON
// records hardware_threads so readers can judge (a 1-core container
// yields ~1.0x regardless of the implementation).
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

struct Options {
  bool smoke = false;
  bool acceptance = false;
  size_t threads = 8;
  size_t shard_size = 0;  // 0 = keep the config default
  std::string out = "BENCH_train.json";
};

/// The serialized training state after `epochs` epochs: every byte that
/// the determinism contract covers.
struct TrainSnapshot {
  std::string params;
  std::string optimizer;
  std::string rng;
  std::string batcher;
  double last_loss = 0.0;

  bool operator==(const TrainSnapshot& o) const {
    return params == o.params && optimizer == o.optimizer && rng == o.rng &&
           batcher == o.batcher;
  }
};

KgagConfig MakeConfig(const Options& opt) {
  KgagConfig cfg = bench::DefaultKgagConfig();
  cfg.select_by_validation = false;
  cfg.pairs_per_epoch = opt.smoke ? 96 : 512;
  if (opt.shard_size > 0) cfg.train_shard_size = opt.shard_size;
  return cfg;
}

std::unique_ptr<KgagModel> MakeModel(const GroupRecDataset& ds,
                                     const KgagConfig& cfg) {
  Result<std::unique_ptr<KgagModel>> model = KgagModel::Create(&ds, cfg);
  KGAG_CHECK(model.ok()) << model.status().ToString();
  return std::move(*model);
}

TrainSnapshot TrainAndSnapshot(const GroupRecDataset& ds,
                               const KgagConfig& cfg, int epochs) {
  std::unique_ptr<KgagModel> model = MakeModel(ds, cfg);
  Rng rng(cfg.seed + 1);  // mirrors Fit()'s train stream
  TrainSnapshot snap;
  for (int e = 0; e < epochs; ++e) snap.last_loss = model->TrainEpoch(&rng);
  ckpt::TrainingState state = model->CaptureTrainingState(
      static_cast<uint64_t>(epochs), /*mid_epoch=*/false,
      /*batches_done=*/0, /*partial_loss=*/0.0, /*selector=*/nullptr);
  snap.params = std::move(state.params);
  snap.optimizer = std::move(state.optimizer);
  snap.rng = std::move(state.rng);
  snap.batcher = std::move(state.batcher);
  return snap;
}

/// Seconds per training epoch, best of `reps` (post-warmup, so tapes,
/// arenas and grad buffers are at steady-state capacity).
double TimeEpoch(const Options& opt, const GroupRecDataset& ds,
                 const KgagConfig& cfg) {
  std::unique_ptr<KgagModel> model = MakeModel(ds, cfg);
  Rng rng(cfg.seed + 1);
  model->TrainEpoch(&rng);  // warmup
  const int reps = opt.smoke ? 1 : 3;
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    model->TrainEpoch(&rng);
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

struct ThreadRow {
  size_t threads = 0;
  double ms_per_epoch = 0.0;
  double speedup = 0.0;  // vs the 1-thread arena run
  bool bit_identical = false;
};

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--acceptance") {
      opt.acceptance = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--shard_size" && i + 1 < argc) {
      opt.shard_size = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: bench_train [--smoke] [--acceptance]"
                << " [--threads N] [--shard_size N] [--out PATH]\n";
      return 2;
    }
  }
  opt.threads = std::max<size_t>(2, opt.threads);

  const GroupRecDataset ds =
      MakeMovieLensRandDataset(17, opt.smoke ? 0.08 : 0.2);
  const KgagConfig base = MakeConfig(opt);
  const int identity_epochs = 3;

  // --- Determinism gate: 1 vs 2 vs N threads, byte-compared. -------------
  KgagConfig cfg1 = base;
  cfg1.train_threads = 1;
  const TrainSnapshot ref = TrainAndSnapshot(ds, cfg1, identity_epochs);

  std::vector<size_t> counts = {2};
  if (opt.threads > 2) counts.push_back(opt.threads);
  bool all_identical = true;
  std::vector<ThreadRow> rows;
  rows.push_back({1, 0.0, 1.0, true});
  for (size_t t : counts) {
    KgagConfig cfg = base;
    cfg.train_threads = static_cast<int>(t);
    const TrainSnapshot snap = TrainAndSnapshot(ds, cfg, identity_epochs);
    const bool same = snap == ref;
    all_identical = all_identical && same;
    rows.push_back({t, 0.0, 0.0, same});
    std::cout << "bit-identity " << t << " vs 1 threads: "
              << (same ? "OK" : "DIVERGED") << " (loss " << snap.last_loss
              << " vs " << ref.last_loss << ")\n";
    if (!same) {
      std::cerr << "FAIL: training state diverged at " << t << " threads ("
                << (snap.params != ref.params ? "params " : "")
                << (snap.optimizer != ref.optimizer ? "optimizer " : "")
                << (snap.rng != ref.rng ? "rng " : "")
                << (snap.batcher != ref.batcher ? "batcher " : "")
                << "differ)\n";
    }
  }

  // Arena off must match arena on bitwise too: same FP ops, different
  // allocator.
  KgagConfig cfg_heap = cfg1;
  cfg_heap.tape_arena = false;
  const TrainSnapshot heap_snap =
      TrainAndSnapshot(ds, cfg_heap, identity_epochs);
  const bool arena_identical = heap_snap == ref;
  all_identical = all_identical && arena_identical;
  std::cout << "bit-identity arena vs heap: "
            << (arena_identical ? "OK" : "DIVERGED") << "\n";

  if (opt.acceptance) {
    std::cout << (all_identical ? "acceptance OK\n" : "acceptance FAILED\n");
    return all_identical ? 0 : 1;
  }

  // --- Timing sweep. ------------------------------------------------------
  const double heap_secs = TimeEpoch(opt, ds, cfg_heap);
  const double arena_secs = TimeEpoch(opt, ds, cfg1);
  const double arena_speedup = heap_secs / arena_secs;
  std::cout << "epoch 1 thread: heap " << heap_secs * 1e3 << " ms, arena "
            << arena_secs * 1e3 << " ms, arena speedup " << arena_speedup
            << "x\n";
  rows[0].ms_per_epoch = arena_secs * 1e3;
  for (size_t i = 1; i < rows.size(); ++i) {
    KgagConfig cfg = base;
    cfg.train_threads = static_cast<int>(rows[i].threads);
    const double secs = TimeEpoch(opt, ds, cfg);
    rows[i].ms_per_epoch = secs * 1e3;
    rows[i].speedup = arena_secs / secs;
    std::cout << "epoch " << rows[i].threads << " threads: " << secs * 1e3
              << " ms, speedup " << rows[i].speedup << "x\n";
  }

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  bench::JsonWriter w(&out);
  w.BeginObject();
  w.Newline();
  w.Field("bench", "bench_train");
  w.Newline();
  w.Field("smoke", opt.smoke);
  w.Newline();
  w.Field("hardware_threads", std::thread::hardware_concurrency());
  w.Newline();
  w.BeginObject("workload");
  w.Field("dataset", ds.name);
  w.Field("pairs_per_epoch", base.pairs_per_epoch);
  w.Field("batch_size", base.batch_size);
  w.Field("shard_size", base.train_shard_size);
  w.Field("identity_epochs", identity_epochs);
  w.EndObject();
  w.Newline();
  w.BeginObject("arena");
  w.Field("heap_ms_per_epoch", heap_secs * 1e3);
  w.Field("arena_ms_per_epoch", arena_secs * 1e3);
  w.Field("speedup", arena_speedup);
  w.Field("bit_identical", arena_identical);
  w.EndObject();
  w.Newline();
  w.BeginArray("threads");
  w.Newline();
  for (const ThreadRow& r : rows) {
    w.BeginObject();
    w.Field("threads", r.threads);
    w.Field("ms_per_epoch", r.ms_per_epoch);
    w.Field("speedup", r.speedup);
    w.Field("bit_identical", r.bit_identical);
    w.EndObject();
    w.Newline();
  }
  w.EndArray();
  w.Newline();
  w.Field("all_bit_identical", all_identical);
  w.Newline();
  w.EndObject();
  w.Newline();
  std::cout << "wrote " << opt.out << "\n";
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) { return kgag::Main(argc, argv); }
