// Regenerates Figure 4: sensitivity of KGAG to the margin M of the
// pairwise loss (0.2..0.6) and the propagation depth H (1..3), on the Simi
// corpus. The paper reports an inverted-U in both: performance rises then
// falls. Results are printed as series and written to CSV for re-plotting.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/csv_writer.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"
#include "obs/obs.h"

namespace kgag {
namespace {

EvalResult TrainAndEval(const GroupRecDataset& ds, const KgagConfig& cfg) {
  auto model = KgagModel::Create(&ds, cfg);
  KGAG_CHECK(model.ok()) << model.status().ToString();
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  return eval.EvaluateTest(model->get());
}

void Run(const bench::CheckpointFlags& ckpt_flags) {
  GroupRecDataset ds =
      MakeMovieLensSimiDataset(bench::WorldSeed(), bench::DatasetScale());

  // Per-epoch loss lands in the sink automatically (Fit snapshots each
  // epoch); the sweep loop below adds one labelled line per sweep point
  // with the final HR@5/NDCG@5 gauges. Reading metrics never touches the
  // RNG streams, so the checked-in CSV stays byte-identical to pre-obs
  // runs.
  KGAG_OBS_ONLY((void)obs::OpenMetricsJsonl("fig4_metrics.jsonl");)

  CsvWriter csv;
  const bool csv_ok =
      csv.Open("fig4_margin_layers.csv",
               {"sweep", "value", "rec_at_5", "hit_at_5"})
          .ok();

  std::printf("Figure 4 — margin M and propagation depth H on Simi\n\n");

  TablePrinter margin_table({"Margin M", "rec@5", "hit@5"});
  double margin_hits[5];
  const double margins[5] = {0.2, 0.3, 0.4, 0.5, 0.6};
  for (int i = 0; i < 5; ++i) {
    KgagConfig cfg = bench::DefaultKgagConfig();
    cfg.margin = margins[i];
    char tag[32];
    std::snprintf(tag, sizeof(tag), "margin_%.1f", margins[i]);
    ckpt_flags.Apply(&cfg, tag);
    Stopwatch sw;
    EvalResult r = TrainAndEval(ds, cfg);
    margin_hits[i] = r.hit_at_k;
    KGAG_GAUGE_SET("fig4.margin", margins[i]);
    KGAG_OBS_SNAPSHOT("fig4.margin_point");
    std::fprintf(stderr, "  [M=%.1f: hit=%.4f, %.0fs]\n", margins[i],
                 r.hit_at_k, sw.ElapsedSeconds());
    margin_table.AddRow({TablePrinter::Num(margins[i], 1),
                         TablePrinter::Num(r.recall_at_k),
                         TablePrinter::Num(r.hit_at_k)});
    if (csv_ok) {
      (void)csv.WriteRow({"margin", TablePrinter::Num(margins[i], 1),
                          TablePrinter::Num(r.recall_at_k),
                          TablePrinter::Num(r.hit_at_k)});
    }
  }
  margin_table.Print(std::cout);

  TablePrinter depth_table({"Depth H", "rec@5", "hit@5"});
  double depth_hits[3];
  for (int h = 1; h <= 3; ++h) {
    KgagConfig cfg = bench::DefaultKgagConfig();
    cfg.propagation.depth = h;
    ckpt_flags.Apply(&cfg, "depth_" + std::to_string(h));
    Stopwatch sw;
    EvalResult r = TrainAndEval(ds, cfg);
    depth_hits[h - 1] = r.hit_at_k;
    KGAG_GAUGE_SET("fig4.depth", h);
    KGAG_OBS_SNAPSHOT("fig4.depth_point");
    std::fprintf(stderr, "  [H=%d: hit=%.4f, %.0fs]\n", h, r.hit_at_k,
                 sw.ElapsedSeconds());
    depth_table.AddRow({std::to_string(h), TablePrinter::Num(r.recall_at_k),
                        TablePrinter::Num(r.hit_at_k)});
    if (csv_ok) {
      (void)csv.WriteRow({"depth", std::to_string(h),
                          TablePrinter::Num(r.recall_at_k),
                          TablePrinter::Num(r.hit_at_k)});
    }
  }
  std::printf("\n");
  depth_table.Print(std::cout);
  if (csv_ok) (void)csv.Close();
  KGAG_OBS_ONLY(obs::CloseMetricsJsonl();)

  // Paper shape: interior optimum for both sweeps.
  const double best_margin =
      *std::max_element(margin_hits, margin_hits + 5);
  std::printf("\nShape checks (paper §IV-G):\n");
  std::printf("  Best margin is interior (not 0.2 or 0.6): %s\n",
              (best_margin != margin_hits[0] && best_margin != margin_hits[4])
                  ? "OK"
                  : "MISMATCH");
  std::printf("  H=2 >= H=1 and H=2 >= H=3: %s\n",
              (depth_hits[1] >= depth_hits[0] && depth_hits[1] >= depth_hits[2])
                  ? "OK"
                  : "MISMATCH");
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) {
  kgag::Stopwatch sw;
  kgag::Run(kgag::bench::ParseCheckpointFlags(argc, argv));
  std::printf("\n[fig4_margin_layers completed in %.1fs]\n",
              sw.ElapsedSeconds());
  return 0;
}
