// Regenerates Table IV: GCN vs GraphSage representation-update functions
// (Eq. 5 vs Eq. 6) on Rand and Simi.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

void Run() {
  GroupRecDataset rand_ds =
      MakeMovieLensRandDataset(bench::WorldSeed(), bench::DatasetScale());
  GroupRecDataset simi_ds =
      MakeMovieLensSimiDataset(bench::WorldSeed(), bench::DatasetScale());

  std::printf(
      "Table IV — aggregation function (rec@5 / hit@5), paper values in "
      "brackets\n\n");
  TablePrinter table({"Aggregator", "Rand ours", "Rand paper", "Simi ours",
                      "Simi paper"});

  double hit[2][2];  // [aggregator][dataset]
  const char* names[2] = {"GCN", "GraphSage"};
  const char* paper_cells[2][2] = {{"0.1627 / 0.5497", "0.1913 / 0.7417"},
                                   {"0.1589 / 0.4901", "0.1638 / 0.5960"}};
  for (int a = 0; a < 2; ++a) {
    KgagConfig cfg = bench::DefaultKgagConfig();
    cfg.propagation.aggregator =
        a == 0 ? AggregatorKind::kGcn : AggregatorKind::kGraphSage;
    std::vector<std::string> row{names[a]};
    GroupRecDataset* sets[2] = {&rand_ds, &simi_ds};
    for (int d = 0; d < 2; ++d) {
      Stopwatch sw;
      auto model = KgagModel::Create(sets[d], cfg);
      KGAG_CHECK(model.ok()) << model.status().ToString();
      (*model)->Fit();
      RankingEvaluator eval(sets[d], 5);
      EvalResult r = eval.EvaluateTest(model->get());
      hit[a][d] = r.hit_at_k;
      std::fprintf(stderr, "  [%s on %s: rec=%.4f hit=%.4f, %.0fs]\n",
                   names[a], d == 0 ? "Rand" : "Simi", r.recall_at_k,
                   r.hit_at_k, sw.ElapsedSeconds());
      row.push_back(bench::Cell(r.recall_at_k, r.hit_at_k));
      row.push_back(paper_cells[a][d]);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nShape check: GCN >= GraphSage on both datasets -> %s\n",
              (hit[0][0] >= hit[1][0] && hit[0][1] >= hit[1][1])
                  ? "OK"
                  : "MISMATCH");
}

}  // namespace
}  // namespace kgag

int main() {
  kgag::Stopwatch sw;
  kgag::Run();
  std::printf("\n[table4_aggregator completed in %.1fs]\n",
              sw.ElapsedSeconds());
  return 0;
}
