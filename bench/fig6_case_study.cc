// Regenerates Figure 6 (RQ4, interpretability case study): train KGAG on
// the Simi corpus, pick a test group with a held-out positive, and print
// each member's self-persistence (SP), peer-influence (PI) and normalized
// influence α, plus the prediction score — the per-member bar chart of the
// paper's Fig. 6, as a table.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

void Run() {
  GroupRecDataset ds =
      MakeMovieLensSimiDataset(bench::WorldSeed(), bench::DatasetScale());
  auto model = KgagModel::Create(&ds, bench::DefaultKgagConfig());
  KGAG_CHECK(model.ok()) << model.status().ToString();
  (*model)->Fit();

  std::printf(
      "Figure 6 — case study: per-member influence on a test "
      "recommendation\n");
  std::printf(
      "(paper: group g41, item v1085, prediction 0.8518; one member "
      "dominates, a second follows, the rest contribute little)\n\n");

  // Pick the test pair with the most confident prediction, mirroring the
  // paper's choice of a successfully recommended item.
  KGAG_CHECK(!ds.split.test.empty());
  GroupId best_group = ds.split.test[0].row;
  ItemId best_item = ds.split.test[0].item;
  double best_pred = -1;
  const size_t probe = std::min<size_t>(ds.split.test.size(), 50);
  for (size_t i = 0; i < probe; ++i) {
    const double p = (*model)->PredictGroupItem(ds.split.test[i].row,
                                                ds.split.test[i].item);
    if (p > best_pred) {
      best_pred = p;
      best_group = ds.split.test[i].row;
      best_item = ds.split.test[i].item;
    }
  }

  GroupExplanation ex = (*model)->ExplainGroup(best_group, best_item);
  std::printf("group g%d, candidate item v%d, prediction score %.4f\n\n",
              best_group, best_item, ex.prediction);

  TablePrinter table({"Member", "SP (self persistence)",
                      "PI (peer influence)", "influence (softmax)"});
  for (size_t i = 0; i < ex.members.size(); ++i) {
    table.AddRow({"u" + std::to_string(ex.members[i]),
                  TablePrinter::Num(ex.attention.sp[i]),
                  TablePrinter::Num(ex.attention.pi[i]),
                  TablePrinter::Num(ex.attention.alpha[i])});
  }
  table.Print(std::cout);

  // Bar rendering, like the figure.
  std::printf("\ninfluence distribution:\n");
  for (size_t i = 0; i < ex.members.size(); ++i) {
    const int bars = static_cast<int>(ex.attention.alpha[i] * 50 + 0.5);
    std::printf("  u%-8d |%s %.3f\n", ex.members[i],
                std::string(bars, '#').c_str(), ex.attention.alpha[i]);
  }

  std::vector<double> alpha = ex.attention.alpha;
  std::sort(alpha.rbegin(), alpha.rend());
  std::printf("\nShape checks (paper §IV-H):\n");
  std::printf(
      "  Influence is concentrated (top member > uniform share %.3f): "
      "%.3f -> %s\n",
      1.0 / alpha.size(), alpha[0],
      alpha[0] > 1.0 / alpha.size() ? "OK" : "MISMATCH");
  std::printf("  Prediction is confident (> 0.5): %.3f -> %s\n", ex.prediction,
              ex.prediction > 0.5 ? "OK" : "MISMATCH");
}

}  // namespace
}  // namespace kgag

int main() {
  kgag::Stopwatch sw;
  kgag::Run();
  std::printf("\n[fig6_case_study completed in %.1fs]\n", sw.ElapsedSeconds());
  return 0;
}
