// Regenerates Table I (dataset statistics) for the three synthetic
// corpora, printing the paper's values alongside. Absolute counts are
// scaled down (laptop-scale substitution, DESIGN.md §4); the *ratios* that
// drive the experiments — group sizes, Rand-vs-Simi interaction density,
// Yelp's 1.0 interactions/group — are the reproduction targets.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic/group_builder.h"
#include "data/synthetic/standard_datasets.h"

namespace kgag {
namespace {

struct PaperRow {
  const char* name;
  long groups, items, users, group_size, interactions;
  double inter_per_group;
};

constexpr PaperRow kPaper[] = {
    {"MovieLens-20M-Rand", 49472, 3413, 5802, 8, 249596, 5.05},
    {"MovieLens-20M-Simi", 29670, 3413, 5802, 5, 332021, 11.19},
    {"Yelp", 19322, 1130, 3511, 3, 19442, 1.00},
};

void Run() {
  const uint64_t seed = bench::WorldSeed();
  const double scale = bench::DatasetScale();
  GroupRecDataset datasets[3] = {
      MakeMovieLensRandDataset(seed, scale),
      MakeMovieLensSimiDataset(seed, scale),
      MakeYelpDataset(seed, scale),
  };

  std::printf("Table I — dataset statistics (synthetic, scale=%.2f)\n\n",
              scale);
  TablePrinter table({"Statistic", "Rand (ours)", "Rand (paper)",
                      "Simi (ours)", "Simi (paper)", "Yelp (ours)",
                      "Yelp (paper)"});
  auto num = [](long v) { return std::to_string(v); };
  DatasetStats s[3] = {datasets[0].Stats(), datasets[1].Stats(),
                       datasets[2].Stats()};
  table.AddRow({"Total groups", num(s[0].total_groups), num(kPaper[0].groups),
                num(s[1].total_groups), num(kPaper[1].groups),
                num(s[2].total_groups), num(kPaper[2].groups)});
  table.AddRow({"Total items", num(s[0].total_items), num(kPaper[0].items),
                num(s[1].total_items), num(kPaper[1].items),
                num(s[2].total_items), num(kPaper[2].items)});
  table.AddRow({"Total users", num(s[0].total_users), num(kPaper[0].users),
                num(s[1].total_users), num(kPaper[1].users),
                num(s[2].total_users), num(kPaper[2].users)});
  table.AddRow({"Group size", num(s[0].group_size), num(kPaper[0].group_size),
                num(s[1].group_size), num(kPaper[1].group_size),
                num(s[2].group_size), num(kPaper[2].group_size)});
  table.AddRow({"Interactions", num(s[0].group_interactions),
                num(kPaper[0].interactions), num(s[1].group_interactions),
                num(kPaper[1].interactions), num(s[2].group_interactions),
                num(kPaper[2].interactions)});
  table.AddRow({"Inter./group",
                TablePrinter::Num(s[0].interactions_per_group, 2),
                TablePrinter::Num(kPaper[0].inter_per_group, 2),
                TablePrinter::Num(s[1].interactions_per_group, 2),
                TablePrinter::Num(kPaper[1].inter_per_group, 2),
                TablePrinter::Num(s[2].interactions_per_group, 2),
                TablePrinter::Num(kPaper[2].inter_per_group, 2)});
  table.Print(std::cout);

  std::printf("\nKnowledge graphs (ours):\n");
  TablePrinter kg({"Dataset", "Entities", "Relations", "Triples"});
  for (int i = 0; i < 3; ++i) {
    kg.AddRow({datasets[i].name, std::to_string(s[i].kg_entities),
               std::to_string(s[i].kg_relations),
               std::to_string(s[i].kg_triples)});
  }
  kg.Print(std::cout);

  // Shape checks the paper's narrative depends on.
  std::printf("\nShape checks:\n");
  std::printf("  Simi denser than Rand (Inter./group): %.2f > %.2f -> %s\n",
              s[1].interactions_per_group, s[0].interactions_per_group,
              s[1].interactions_per_group > s[0].interactions_per_group
                  ? "OK"
                  : "MISMATCH");
  std::printf("  Yelp Inter./group ~= 1.00: %.2f -> %s\n",
              s[2].interactions_per_group,
              std::abs(s[2].interactions_per_group - 1.0) < 0.05 ? "OK"
                                                                 : "MISMATCH");
}

}  // namespace
}  // namespace kgag

int main() {
  kgag::Stopwatch sw;
  kgag::Run();
  std::printf("\n[table1_datasets completed in %.1fs]\n", sw.ElapsedSeconds());
  return 0;
}
