// Regenerates Figure 5: sensitivity of KGAG to the group-loss weight β
// (0.5..0.9) and the representation dimension d (16..64), on the Simi
// corpus. The paper reports an inverted-U for both sweeps.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/csv_writer.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

EvalResult TrainAndEval(const GroupRecDataset& ds, const KgagConfig& cfg) {
  auto model = KgagModel::Create(&ds, cfg);
  KGAG_CHECK(model.ok()) << model.status().ToString();
  (*model)->Fit();
  RankingEvaluator eval(&ds, 5);
  return eval.EvaluateTest(model->get());
}

void Run(const bench::CheckpointFlags& ckpt_flags) {
  GroupRecDataset ds =
      MakeMovieLensSimiDataset(bench::WorldSeed(), bench::DatasetScale());

  CsvWriter csv;
  const bool csv_ok =
      csv.Open("fig5_beta_dim.csv", {"sweep", "value", "rec_at_5", "hit_at_5"})
          .ok();

  std::printf("Figure 5 — group-loss weight beta and dimension d on Simi\n\n");

  TablePrinter beta_table({"beta", "rec@5", "hit@5"});
  const double betas[5] = {0.5, 0.6, 0.7, 0.8, 0.9};
  double beta_hits[5];
  for (int i = 0; i < 5; ++i) {
    KgagConfig cfg = bench::DefaultKgagConfig();
    cfg.beta = betas[i];
    char tag[32];
    std::snprintf(tag, sizeof(tag), "beta_%.1f", betas[i]);
    ckpt_flags.Apply(&cfg, tag);
    Stopwatch sw;
    EvalResult r = TrainAndEval(ds, cfg);
    beta_hits[i] = r.hit_at_k;
    std::fprintf(stderr, "  [beta=%.1f: hit=%.4f, %.0fs]\n", betas[i],
                 r.hit_at_k, sw.ElapsedSeconds());
    beta_table.AddRow({TablePrinter::Num(betas[i], 1),
                       TablePrinter::Num(r.recall_at_k),
                       TablePrinter::Num(r.hit_at_k)});
    if (csv_ok) {
      (void)csv.WriteRow({"beta", TablePrinter::Num(betas[i], 1),
                          TablePrinter::Num(r.recall_at_k),
                          TablePrinter::Num(r.hit_at_k)});
    }
  }
  beta_table.Print(std::cout);

  TablePrinter dim_table({"d", "rec@5", "hit@5"});
  const int dims[4] = {8, 16, 32, 64};
  double dim_hits[4];
  for (int i = 0; i < 4; ++i) {
    KgagConfig cfg = bench::DefaultKgagConfig();
    cfg.propagation.dim = dims[i];
    ckpt_flags.Apply(&cfg, "dim_" + std::to_string(dims[i]));
    Stopwatch sw;
    EvalResult r = TrainAndEval(ds, cfg);
    dim_hits[i] = r.hit_at_k;
    std::fprintf(stderr, "  [d=%d: hit=%.4f, %.0fs]\n", dims[i], r.hit_at_k,
                 sw.ElapsedSeconds());
    dim_table.AddRow({std::to_string(dims[i]),
                      TablePrinter::Num(r.recall_at_k),
                      TablePrinter::Num(r.hit_at_k)});
    if (csv_ok) {
      (void)csv.WriteRow({"dim", std::to_string(dims[i]),
                          TablePrinter::Num(r.recall_at_k),
                          TablePrinter::Num(r.hit_at_k)});
    }
  }
  std::printf("\n");
  dim_table.Print(std::cout);
  if (csv_ok) (void)csv.Close();

  std::printf("\nShape checks (paper §IV-G):\n");
  const double best_beta = *std::max_element(beta_hits, beta_hits + 5);
  std::printf("  Best beta is interior (not 0.5 or 0.9): %s\n",
              (best_beta != beta_hits[0] && best_beta != beta_hits[4])
                  ? "OK"
                  : "MISMATCH");
  const double best_dim = *std::max_element(dim_hits, dim_hits + 4);
  std::printf("  Best d is interior (not 8 or 64): %s\n",
              (best_dim != dim_hits[0] && best_dim != dim_hits[3])
                  ? "OK"
                  : "MISMATCH");
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) {
  kgag::Stopwatch sw;
  kgag::Run(kgag::bench::ParseCheckpointFlags(argc, argv));
  std::printf("\n[fig5_beta_dim completed in %.1fs]\n", sw.ElapsedSeconds());
  return 0;
}
