// Regenerates Table II: overall comparison of CF+{LM,MP,AVG},
// KGCN+{LM,MP,AVG}, MoSAN and KGAG on the three corpora, reporting rec@5
// and hit@5. Paper values are printed alongside; absolute numbers differ
// (synthetic substitution) but the shape — KGAG on top, LM the best static
// strategy, Simi easier than Rand, Yelp easiest — is the target.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/mosan.h"
#include "baselines/trivial.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "eval/ranking_evaluator.h"
#include "models/kgag_model.h"

namespace kgag {
namespace {

struct PaperCell {
  double rec, hit;
};

// Table II of the paper, row-major: Rand, Simi, Yelp per method.
struct PaperRowEntry {
  const char* method;
  PaperCell rand, simi, yelp;
};

constexpr PaperRowEntry kPaper[] = {
    {"CF+LM", {0.1440, 0.4901}, {0.1808, 0.6556}, {0.6954, 0.6954}},
    {"CF+MP", {0.1331, 0.4437}, {0.1769, 0.6887}, {0.6821, 0.6821}},
    {"CF+AVG", {0.1343, 0.4570}, {0.1775, 0.6556}, {0.6887, 0.6887}},
    {"KGCN+LM", {0.1584, 0.4834}, {0.1699, 0.6159}, {0.7219, 0.7219}},
    {"KGCN+MP", {0.1501, 0.4636}, {0.1658, 0.6026}, {0.7351, 0.7351}},
    {"KGCN+AVG", {0.1532, 0.4834}, {0.1687, 0.5828}, {0.7152, 0.7152}},
    {"MoSAN", {0.1482, 0.4967}, {0.1667, 0.6093}, {0.5960, 0.5960}},
    {"KGAG", {0.1627, 0.5497}, {0.1913, 0.7417}, {0.7748, 0.7748}},
};

const PaperRowEntry* PaperRowFor(const std::string& method) {
  for (const auto& row : kPaper) {
    if (method == row.method) return &row;
  }
  return nullptr;
}

std::unique_ptr<TrainableGroupRecommender> MakeModel(
    const std::string& method, const GroupRecDataset* ds) {
  auto agg_of = [](char c) {
    switch (c) {
      case 'L':
        return ScoreAggregation::kLeastMisery;
      case 'M':
        return ScoreAggregation::kMaxPleasure;
      default:
        return ScoreAggregation::kAverage;
    }
  };
  if (method.rfind("CF+", 0) == 0) {
    return std::make_unique<MfGroupRecommender>(ds, bench::DefaultMfConfig(),
                                                agg_of(method[3]));
  }
  if (method.rfind("KGCN+", 0) == 0) {
    auto r = KgcnGroupRecommender::Create(ds, bench::DefaultKgcnConfig(),
                                          agg_of(method[5]));
    KGAG_CHECK(r.ok()) << r.status().ToString();
    return std::move(*r);
  }
  if (method == "MoSAN") {
    return std::make_unique<MosanGroupRecommender>(ds,
                                                   bench::DefaultMfConfig());
  }
  KGAG_CHECK(method == "KGAG") << method;
  auto r = KgagModel::Create(ds, bench::DefaultKgagConfig());
  KGAG_CHECK(r.ok()) << r.status().ToString();
  return std::move(*r);
}

void Run() {
  const uint64_t seed = bench::WorldSeed();
  const double scale = bench::DatasetScale();
  std::printf(
      "Table II — overall comparison (rec@5 / hit@5), scale=%.2f, "
      "epochs=%d\n\n",
      scale, bench::Epochs());

  const std::vector<std::string> methods = {"CF+LM",   "CF+MP",  "CF+AVG",
                                            "KGCN+LM", "KGCN+MP", "KGCN+AVG",
                                            "MoSAN",   "KGAG"};
  struct DatasetEntry {
    const char* label;
    GroupRecDataset ds;
  };
  DatasetEntry datasets[] = {
      {"Rand", MakeMovieLensRandDataset(seed, scale)},
      {"Simi", MakeMovieLensSimiDataset(seed, scale)},
      {"Yelp", MakeYelpDataset(seed, scale)},
  };

  TablePrinter table({"Method", "Rand ours", "Rand paper", "Simi ours",
                      "Simi paper", "Yelp ours", "Yelp paper"});
  std::vector<std::vector<EvalResult>> results(
      methods.size(), std::vector<EvalResult>(3));
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    std::vector<std::string> row{methods[mi]};
    const PaperRowEntry* paper = PaperRowFor(methods[mi]);
    for (int di = 0; di < 3; ++di) {
      Stopwatch sw;
      auto model = MakeModel(methods[mi], &datasets[di].ds);
      model->Fit();
      RankingEvaluator eval(&datasets[di].ds, 5);
      results[mi][di] = eval.EvaluateTest(model.get());
      std::fprintf(stderr, "  [%s on %s: rec@5=%.4f hit@5=%.4f, %.0fs]\n",
                   methods[mi].c_str(), datasets[di].label,
                   results[mi][di].recall_at_k, results[mi][di].hit_at_k,
                   sw.ElapsedSeconds());
      row.push_back(bench::Cell(results[mi][di].recall_at_k,
                                results[mi][di].hit_at_k));
      const PaperCell& pc = di == 0 ? paper->rand
                            : di == 1 ? paper->simi
                                      : paper->yelp;
      row.insert(row.begin() + 2 * di + 2, bench::Cell(pc.rec, pc.hit));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  // Shape checks against the paper's observations (§IV-E).
  auto hit = [&](const char* method, int di) {
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      if (methods[mi] == method) return results[mi][di].hit_at_k;
    }
    return 0.0;
  };
  auto best_baseline_hit = [&](int di) {
    double best = 0;
    for (size_t mi = 0; mi + 1 < methods.size(); ++mi) {
      best = std::max(best, results[mi][di].hit_at_k);
    }
    return best;
  };
  std::printf("\nShape checks:\n");
  for (int di = 0; di < 3; ++di) {
    const double kgag = hit("KGAG", di);
    const double best = best_baseline_hit(di);
    std::printf("  KGAG best on %s: %.4f vs best baseline %.4f -> %s\n",
                datasets[di].label, kgag, best,
                kgag >= best ? "OK" : "MISMATCH");
  }
  std::printf("  Models better on Simi than Rand (KGAG): %.4f > %.4f -> %s\n",
              hit("KGAG", 1), hit("KGAG", 0),
              hit("KGAG", 1) > hit("KGAG", 0) ? "OK" : "MISMATCH");
  std::printf("  Yelp best overall (KGAG): %.4f vs Simi %.4f -> %s\n",
              hit("KGAG", 2), hit("KGAG", 1),
              hit("KGAG", 2) > hit("KGAG", 1) ? "OK" : "MISMATCH");
  std::printf("  LM best static strategy on Rand (CF): %s\n",
              hit("CF+LM", 0) >= hit("CF+MP", 0) &&
                      hit("CF+LM", 0) >= hit("CF+AVG", 0)
                  ? "OK"
                  : "MISMATCH");
  if (hit("KGAG", 0) < best_baseline_hit(0) ||
      hit("KGAG", 1) < best_baseline_hit(1)) {
    std::printf(
        "\n  Note: on the synthetic MovieLens substitutes, baselines trained\n"
        "  with the same combined loss + validation selection close most of\n"
        "  the paper's margin; KGAG is competitive there and clearly ahead\n"
        "  in the KG-dependent Yelp regime. See EXPERIMENTS.md for the\n"
        "  analysis of this deviation.\n");
  }
}

}  // namespace
}  // namespace kgag

int main() {
  kgag::Stopwatch sw;
  kgag::Run();
  std::printf("\n[table2_overall completed in %.1fs]\n", sw.ElapsedSeconds());
  return 0;
}
