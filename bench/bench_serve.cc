// bench_serve: online-serving harness (DESIGN.md §10, §11). Builds a
// frozen artifact, proves the artifact round trip is byte-stable at every
// storage precision (fp64, fp32, fp16, int8 — DESIGN.md §11), then drives
// the same request stream through two ServingEngine configurations per
// precision:
//   naive    max_batch=1  — one GEMM per request (the item table is
//                           streamed from memory once per request)
//   batched  max_batch=16 — the dispatcher coalesces the queue and the
//                           item table is streamed once per BATCH
// and reports bytes-per-entity, throughput and p50/p99 request latency.
// Latency percentiles are exact: the engine records every request's
// micros (Options::record_latency) and the quantiles come from the sorted
// raw samples, not from histogram bucket bounds. Batched and naive
// results are bit-identical by construction (pinned in
// tests/test_serve.cc), so this harness is purely about speed and bytes.
//
// The default workload is serving-scale: a synthetic frozen artifact with
// 24576 users x 24576 items at dim 64 (weights random — throughput does
// not depend on how trained they are) under a popularity-skewed stream.
// --smoke keeps the old toy shape: a real model frozen from the tiny
// synthetic corpus, requests drawn from its trained groups.
//
// Each phase also cross-checks the serving path's HDR latency histogram
// (obs/hdr_histogram.h) against the raw samples: the snapshot delta over
// the timed window must contain exactly the phase's requests, and its
// p50/p99 must agree with the raw-sample nearest-rank percentiles within
// one HDR bucket width. That agreement is part of --acceptance in
// obs-enabled builds.
//
// Usage: bench_serve [--smoke] [--acceptance] [--overhead] [--requests N]
//                    [--out PATH]
//   --smoke       tiny dataset + short request stream (CI wiring check)
//   --acceptance  gate only: every precision's round trip byte-stable,
//                 fp64 batched >= naive, (scaled runs) int8 batched
//                 throughput >= 1.5x fp32 batched, and HDR percentiles
//                 within one bucket of raw; no JSON artifact unless
//                 --out is given
//   --overhead    A/B probe for tools/check_obs_overhead.py: drive the
//                 batched engine over a reduced artifact for >= 0.3s of
//                 wall time and emit {"bench":"bench_serve_overhead",
//                 "obs_enabled", "request_ns", ...}; run once obs-ON and
//                 once obs-OFF
//   --net         open-loop network bench only: spin up an in-process
//                 NetServer (or target --connect) and sweep offered QPS
//                 levels with Poisson arrivals, reporting p50/p99/p999
//                 vs offered rate and the saturation/shed point
//   --connect     HOST:PORT of an external serve_model data plane to
//                 drive instead of the in-process server (--net only)
//   --net_users   member-id bound for --connect request generation
//                 (default 32; ignored in-process where the model's own
//                 user count is used)
//   --requests    requests per phase (default 384, smoke 96; in --net
//                 mode requests per offered-QPS level, default 256,
//                 smoke 48)
//   --out         output path (default ./BENCH_serve.json)
//
// The default (non-smoke, non-acceptance) run also appends a
// "net_open_loop" section to BENCH_serve.json: the same open-loop sweep
// over a real loopback socket against the in-process data plane.
//
// The headline sections are "big_world" and "startup" (DESIGN.md §14):
// a million-entity synthetic world is streamed into BOTH artifact
// layouts (KGAGSRV2 mmap and legacy KGAGSRV1), startup cost — artifact
// load, time-to-first-query, RSS growth, mapping residency — is measured
// in forked single-shot child processes (including a second process
// mapping the same v2 artifact, which rides the page cache), mmap and
// heap TopK scores are checked bit-identical, and both models serve the
// same batched request stream. Gates: score bit-identity always; v2
// TTFQ >= 10x faster than v1 at full scale (--smoke runs a reduced
// world where decode cost is too small for the ratio to bind).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define KGAG_BENCH_HAS_FORK 1
#else
#define KGAG_BENCH_HAS_FORK 0
#endif

#include "bench_util.h"
#include "common/check.h"
#include "net_client.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/synthetic/bigworld.h"
#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"
#include "ckpt/checkpoint.h"
#include "models/config.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "online/cold_start.h"
#include "online/online_trainer.h"
#include "online/stream.h"
#include "serve/bigworld_freeze.h"
#include "serve/frozen_model.h"
#include "serve/frozen_scorer.h"
#include "serve/net_server.h"
#include "serve/serving_engine.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace kgag {
namespace {

struct Options {
  bool smoke = false;
  bool acceptance = false;
  bool overhead = false;
  bool net = false;  // open-loop network bench only
  size_t requests = 0;  // 0 = pick by mode
  std::string connect_host;  // --connect HOST:PORT (net mode)
  int connect_port = 0;
  int net_users = 32;  // member-id bound for --connect traffic
  std::string out = "BENCH_serve.json";
};

/// The serving-scale artifact: entity counts and dim chosen so the rep
/// tables dwarf every cache level a request's working set used to fit in
/// at toy scale, which is the regime quantization is for.
constexpr int kScaledUsers = 24576;
constexpr int kScaledItems = 24576;
constexpr int kScaledDim = 64;
constexpr int kScaledGroupSize = 4;

/// Synthesizes a frozen artifact directly — no training, no propagation.
/// Serving throughput depends only on shapes, so random reps measure the
/// same thing a real freeze would, minutes faster.
serve::FrozenModel MakeScaledModel(int num_users = kScaledUsers,
                                   int num_items = kScaledItems) {
  Rng rng(bench::WorldSeed() * 2654435761u + 17);
  serve::FrozenModel m;
  m.dim = kScaledDim;
  m.group_size = kScaledGroupSize;
  m.use_sp = true;
  m.use_pi = true;
  m.num_users = num_users;
  m.num_items = num_items;
  const size_t d = kScaledDim;
  auto fill = [&rng](Tensor* t, double lo, double hi) {
    for (size_t i = 0; i < t->size(); ++i) {
      t->data()[i] = rng.Uniform(lo, hi);
    }
  };
  m.user_emb = Tensor(num_users, d);
  m.item_emb = Tensor(num_items, d);
  // Rep magnitudes in the range trained models land in, so sp logits and
  // softmax temperatures are realistic rather than saturated.
  fill(&m.user_emb, -0.35, 0.35);
  fill(&m.item_emb, -0.35, 0.35);
  m.w1 = Tensor(d, d);
  m.w2 = Tensor(d * (kScaledGroupSize - 1), d);
  m.bias = Tensor(1, d);
  m.vc = Tensor(d, 1);
  fill(&m.w1, -0.1, 0.1);
  fill(&m.w2, -0.05, 0.05);
  fill(&m.bias, -0.1, 0.1);
  fill(&m.vc, -0.2, 0.2);
  return m;
}

/// Deterministic, popularity-skewed request stream over synthetic groups:
/// 60% of traffic hits a 16-group hot set (what the rep cache and
/// in-batch coalescing exploit), the rest draws fresh member sets; a
/// sprinkle of requests carry exclusion lists.
std::vector<serve::TopKRequest> MakeScaledRequests(int num_users,
                                                   int num_items, size_t n) {
  Rng rng(913);
  constexpr int kHotGroups = 16;
  std::vector<std::vector<UserId>> hot(kHotGroups);
  for (auto& g : hot) {
    for (int i = 0; i < kScaledGroupSize; ++i) {
      g.push_back(static_cast<UserId>(rng.UniformInt(0, num_users - 1)));
    }
  }
  std::vector<serve::TopKRequest> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    serve::TopKRequest r;
    if (rng.UniformInt(0, 9) < 6) {
      r.members = hot[static_cast<size_t>(rng.UniformInt(0, kHotGroups - 1))];
    } else {
      const int l = static_cast<int>(rng.UniformInt(2, kScaledGroupSize));
      for (int j = 0; j < l; ++j) {
        r.members.push_back(
            static_cast<UserId>(rng.UniformInt(0, num_users - 1)));
      }
    }
    if (rng.UniformInt(0, 9) < 2) {
      for (int e = 0; e < 4; ++e) {
        r.exclude_seen.push_back(
            static_cast<ItemId>(rng.UniformInt(0, num_items - 1)));
      }
    }
    r.k = 10;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

/// The smoke-mode stream: requests over a real dataset's trained groups
/// (hot set + ad-hoc membership edits), as the pre-quantization harness
/// shipped.
std::vector<serve::TopKRequest> MakeSmokeRequests(const GroupRecDataset& ds,
                                                  size_t n) {
  Rng rng(913);
  std::vector<serve::TopKRequest> reqs;
  reqs.reserve(n);
  const int num_groups = static_cast<int>(ds.groups.num_groups());
  const int num_hot = std::min(8, num_groups);
  for (size_t i = 0; i < n; ++i) {
    serve::TopKRequest r;
    GroupId g;
    if (rng.UniformInt(0, 9) < 6) {
      g = static_cast<GroupId>(rng.UniformInt(0, num_hot - 1));
    } else {
      g = static_cast<GroupId>(rng.UniformInt(0, num_groups - 1));
    }
    std::span<const UserId> members = ds.groups.MembersOf(g);
    r.members.assign(members.begin(), members.end());
    if (g >= num_hot && rng.UniformInt(0, 9) < 3) {
      const int keep =
          rng.UniformInt(1, static_cast<int>(r.members.size()) - 1);
      r.members.resize(static_cast<size_t>(keep));
    }
    if (rng.UniformInt(0, 9) < 2) {
      for (int e = 0; e < 4; ++e) {
        r.exclude_seen.push_back(static_cast<ItemId>(
            rng.UniformInt(0, static_cast<int>(ds.num_items) - 1)));
      }
    }
    r.k = 10;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

/// Nearest-rank percentile over the raw per-request samples.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(p * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct PhaseResult {
  std::string mode;
  size_t requests = 0;
  uint64_t batches = 0;
  double mean_batch = 0.0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  uint64_t coalesced = 0;
  // HDR cross-check: the serve.request_latency_us snapshot delta over
  // the timed window, against the raw samples above. hdr_agrees stays
  // true in obs-disabled builds (nothing recorded, nothing to check).
  uint64_t hdr_count = 0;
  double hdr_p50_us = 0.0;
  double hdr_p99_us = 0.0;
  bool hdr_agrees = true;
};

/// One-bucket-width agreement between an HDR quantile and the raw-sample
/// quantile it mirrors. The +1 covers the integer floor of the unit
/// buckets below 32 (a raw 31.7us sample lands in bucket [31, 31]).
bool HdrWithinOneBucket(double hdr_q, double raw_q) {
  const size_t b = obs::HdrHistogram::BucketFor(raw_q);
  const double width = obs::HdrHistogram::BucketUpperEdge(b) -
                       obs::HdrHistogram::BucketLowerEdge(b) + 1.0;
  return std::abs(hdr_q - raw_q) <= width;
}

/// Submits the whole stream as one burst and waits for every future —
/// the queue depth is what lets the batched dispatcher coalesce.
PhaseResult RunPhase(const std::string& mode, const serve::FrozenModel* model,
                     serve::ServingEngine::Options engine_opts,
                     const std::vector<serve::TopKRequest>& reqs) {
  engine_opts.record_latency = true;
  serve::ServingEngine engine(model, engine_opts);
  // Warm the engine untimed (first-touch metric registration, lazy
  // allocations), then drop those samples.
  for (size_t i = 0; i < std::min<size_t>(reqs.size(), 8); ++i) {
    KGAG_CHECK(engine.Submit(reqs[i]).get().ok());
  }
  engine.cache()->Clear();
  (void)engine.TakeLatencySamples();
  // Window the shared HDR series to exactly this phase's requests: the
  // registry is process-global, so the delta between two snapshots is
  // what this run contributed.
  const obs::HdrHistogram* hdr =
      obs::MetricsRegistry::Global().FindHdrHistogram(
          "serve.request_latency_us");
  obs::HdrSnapshot hdr_before;
  if (hdr != nullptr) hdr_before = hdr->Snapshot();

  std::vector<std::future<Result<serve::TopKResult>>> futures;
  futures.reserve(reqs.size());
  const uint64_t batches_before = engine.batches_run();
  Stopwatch sw;
  for (const serve::TopKRequest& r : reqs) futures.push_back(engine.Submit(r));
  for (auto& f : futures) {
    Result<serve::TopKResult> r = f.get();
    KGAG_CHECK(r.ok()) << r.status().ToString();
  }
  const double secs = sw.ElapsedSeconds();

  PhaseResult out;
  out.mode = mode;
  out.requests = reqs.size();
  out.batches = engine.batches_run() - batches_before;
  out.mean_batch = out.batches == 0
                       ? 0.0
                       : static_cast<double>(reqs.size()) /
                             static_cast<double>(out.batches);
  out.wall_ms = secs * 1e3;
  out.qps = secs == 0.0 ? 0.0 : static_cast<double>(reqs.size()) / secs;
  const std::vector<double> samples = engine.TakeLatencySamples();
  out.p50_us = Percentile(samples, 0.50);
  out.p99_us = Percentile(samples, 0.99);
  if (hdr != nullptr) {
    obs::HdrSnapshot delta = hdr->Snapshot();
    delta.Subtract(hdr_before);
    out.hdr_count = delta.total;
    out.hdr_p50_us = delta.Quantile(0.50);
    out.hdr_p99_us = delta.Quantile(0.99);
    out.hdr_agrees = delta.total == samples.size() &&
                     HdrWithinOneBucket(out.hdr_p50_us, out.p50_us) &&
                     HdrWithinOneBucket(out.hdr_p99_us, out.p99_us);
  }
  out.cache_hits = engine.cache()->hits();
  out.cache_misses = engine.cache()->misses();
  out.cache_hit_rate = engine.cache()->HitRate();
  out.coalesced = engine.coalesced_requests();
  return out;
}

// --- Open-loop network bench (DESIGN.md §13) -----------------------------

/// Offered-load multipliers swept against the calibrated peak rate: three
/// sub-saturation points for the flat part of the latency curve, two
/// overload points where shedding must kick in.
constexpr double kNetLoadLevels[] = {0.3, 0.6, 0.9, 1.2, 1.5};

struct NetReport {
  std::string target;      ///< "in-process" or HOST:PORT
  size_t connections = 0;
  size_t requests_per_level = 0;
  double calibration_qps = 0.0;  ///< burst throughput = capacity estimate
  int64_t deadline_us = 0;       ///< per-request deadline during the sweep
  std::vector<bench::OpenLoopResult> levels;
  bool saturated = false;
  double saturation_offered_qps = 0.0;  ///< first saturated level's rate
};

/// Sweeps offered-QPS levels against a live data plane. Calibration
/// first: the whole burst scheduled at once (offered rate effectively
/// infinite) with no deadline measures peak sustainable throughput.
/// The sweep then stamps every request with a deadline of 20 mean
/// service times — generous at any stable load, but crossed within a
/// couple hundred requests once the offered rate exceeds capacity, so
/// overload shows up as shedding rather than an unbounded queue.
NetReport RunNetSweep(const std::string& host, int port, int32_t pool_users,
                      size_t per_level, bool smoke) {
  NetReport rep;
  rep.connections = 8;
  rep.requests_per_level = per_level;
  const std::vector<serve::TopKRequest> pool =
      bench::MakeNetRequestPool(pool_users, 64, /*seed=*/42);

  bench::OpenLoopOptions level;
  level.host = host;
  level.port = port;
  level.connections = rep.connections;
  level.requests = smoke ? 64 : 128;
  level.offered_qps = 1e9;  // the whole burst due at t=0
  level.deadline_us = 0;
  level.seed = 1;
  const bench::OpenLoopResult calib = bench::RunOpenLoopLevel(level, pool);
  if (calib.ok == 0) {
    std::cerr << "net calibration failed: " << calib.errors
              << " errors, server unreachable?\n";
    return rep;
  }
  rep.calibration_qps = calib.achieved_qps;
  rep.deadline_us = std::max<int64_t>(
      5000, static_cast<int64_t>(20.0 * 1e6 / rep.calibration_qps));
  std::cout << "net calibration: " << rep.calibration_qps
            << " qps peak, sweep deadline " << rep.deadline_us << " us\n";

  level.requests = per_level;
  level.deadline_us = rep.deadline_us;
  for (double mult : kNetLoadLevels) {
    level.offered_qps = mult * rep.calibration_qps;
    level.seed = static_cast<uint64_t>(mult * 1000);
    const bench::OpenLoopResult r = bench::RunOpenLoopLevel(level, pool);
    const bool level_saturated =
        r.achieved_qps < 0.9 * r.empirical_offered_qps ||
        static_cast<double>(r.shed) > 0.005 * static_cast<double>(r.sent);
    if (level_saturated && !rep.saturated) {
      rep.saturated = true;
      rep.saturation_offered_qps = r.offered_qps;
    }
    std::cout << "net " << mult << "x: offered " << r.offered_qps
              << " qps, achieved " << r.achieved_qps << ", ok " << r.ok
              << " shed " << r.shed << " err " << r.errors << ", p50 "
              << r.p50_us << " us p99 " << r.p99_us << " us p999 "
              << r.p999_us << " us" << (level_saturated ? "  [saturated]" : "")
              << "\n";
    rep.levels.push_back(r);
  }
  return rep;
}

/// The in-process variant: a reduced scaled model behind a real
/// NetServer on an ephemeral loopback port, bounded admission queue so
/// overload sheds instead of queueing without limit.
NetReport RunInProcessNetSweep(size_t per_level, bool smoke) {
  constexpr int kUsers = 4096;
  constexpr int kItems = 4096;
  const serve::FrozenModel model = MakeScaledModel(kUsers, kItems);
  serve::ServingEngine::Options eo;
  eo.max_batch = 16;
  eo.batch_deadline_us = 200;
  eo.cache_capacity = 256;
  eo.max_queue = 1024;
  serve::ServingEngine engine(&model, eo);
  serve::NetServer server(&engine, {});
  KGAG_CHECK(server.Start().ok());
  NetReport rep = RunNetSweep("127.0.0.1", server.port(), kUsers, per_level,
                              smoke);
  rep.target = "in-process";
  server.Stop();
  engine.Shutdown();
  return rep;
}

void WriteNetReport(bench::JsonWriter* w, const NetReport& rep) {
  w->BeginObject("net_open_loop");
  w->Field("transport", "tcp-binary-pipelined");
  w->Field("target", rep.target);
  w->Field("connections", rep.connections);
  w->Field("requests_per_level", rep.requests_per_level);
  w->Field("calibration_qps", rep.calibration_qps);
  w->Field("deadline_us", rep.deadline_us);
  w->BeginArray("levels");
  for (const bench::OpenLoopResult& r : rep.levels) {
    w->BeginObject();
    w->Field("offered_qps", r.offered_qps);
    w->Field("empirical_offered_qps", r.empirical_offered_qps);
    w->Field("achieved_qps", r.achieved_qps);
    w->Field("sent", r.sent);
    w->Field("ok", r.ok);
    w->Field("shed", r.shed);
    w->Field("errors", r.errors);
    w->Field("wall_s", r.wall_s);
    w->Field("p50_us", r.p50_us);
    w->Field("p99_us", r.p99_us);
    w->Field("p999_us", r.p999_us);
    w->EndObject();
  }
  w->EndArray();
  w->Field("saturation_observed", rep.saturated);
  w->Field("saturation_offered_qps", rep.saturation_offered_qps);
  w->EndObject();
}

/// --net entry point: sweep only, against --connect or an in-process
/// server, standalone JSON artifact.
int RunNet(const Options& opt) {
  const size_t per_level =
      opt.requests > 0 ? opt.requests : (opt.smoke ? 48 : 256);
  NetReport rep;
  if (!opt.connect_host.empty()) {
    rep = RunNetSweep(opt.connect_host, opt.connect_port,
                      static_cast<int32_t>(opt.net_users), per_level,
                      opt.smoke);
    rep.target = opt.connect_host + ":" + std::to_string(opt.connect_port);
  } else {
    rep = RunInProcessNetSweep(per_level, opt.smoke);
  }
  if (rep.levels.empty()) return 1;
  size_t total_err = 0;
  for (const bench::OpenLoopResult& r : rep.levels) total_err += r.errors;

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  bench::JsonWriter w(&out);
  w.BeginObject();
  w.Newline();
  w.Field("bench", "bench_serve_net");
  w.Newline();
  w.Field("smoke", opt.smoke);
  w.Newline();
  WriteNetReport(&w, rep);
  w.Newline();
  w.EndObject();
  w.Newline();
  std::cout << "wrote " << opt.out << "\n";
  // Transport errors mean the harness itself misbehaved; shedding under
  // overload is the expected signal, not a failure.
  return total_err == 0 ? 0 : 1;
}

struct TierResult {
  QuantType precision = QuantType::kFp64;
  size_t artifact_bytes = 0;
  size_t bytes_per_entity = 0;
  bool round_trip = false;
  PhaseResult naive;
  PhaseResult batched;
};

/// The A/B obs-overhead probe: the batched engine over a reduced
/// artifact (small enough that instrumentation cost is a visible
/// fraction, big enough that the GEMM still dominates scheduling), the
/// request stream replayed until at least `min_wall_s` of wall time so
/// per-run scheduler noise amortizes. Emits one JSON the overhead
/// checker can median across repeats.
int RunOverhead(const Options& opt) {
  constexpr int kUsers = 4096;
  constexpr int kItems = 4096;
  const double min_wall_s = opt.smoke ? 0.05 : 0.3;
  const serve::FrozenModel model = MakeScaledModel(kUsers, kItems);
  const std::vector<serve::TopKRequest> reqs =
      MakeScaledRequests(kUsers, kItems, opt.requests > 0 ? opt.requests : 256);

  serve::ServingEngine engine(&model, {.max_batch = 16,
                                       .batch_deadline_us = 200,
                                       .cache_capacity = 256,
                                       .pool = nullptr});
  for (size_t i = 0; i < std::min<size_t>(reqs.size(), 8); ++i) {
    KGAG_CHECK(engine.Submit(reqs[i]).get().ok());
  }
  engine.cache()->Clear();

  size_t total = 0;
  Stopwatch sw;
  double secs = 0.0;
  while (secs < min_wall_s) {
    std::vector<std::future<Result<serve::TopKResult>>> futures;
    futures.reserve(reqs.size());
    for (const serve::TopKRequest& r : reqs) {
      futures.push_back(engine.Submit(r));
    }
    for (auto& f : futures) {
      Result<serve::TopKResult> r = f.get();
      KGAG_CHECK(r.ok()) << r.status().ToString();
    }
    total += reqs.size();
    secs = sw.ElapsedSeconds();
  }
  const double request_ns = secs * 1e9 / static_cast<double>(total);
  std::cout << "overhead probe: " << total << " requests in " << secs * 1e3
            << " ms (" << request_ns << " ns/request), obs_enabled="
            << (KGAG_OBS_ACTIVE ? "true" : "false") << "\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"bench_serve_overhead\",\n"
      << "  \"obs_enabled\": " << (KGAG_OBS_ACTIVE ? "true" : "false")
      << ",\n  \"smoke\": " << (opt.smoke ? "true" : "false")
      << ",\n  \"num_users\": " << kUsers << ", \"num_items\": " << kItems
      << ", \"dim\": " << kScaledDim
      << ",\n  \"requests\": " << total
      << ",\n  \"min_wall_s\": " << min_wall_s
      << ",\n  \"wall_ms\": " << secs * 1e3
      << ",\n  \"request_ns\": " << request_ns << "\n}\n";
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

// --- Big-world mmap-vs-heap benchmark (DESIGN.md §14) --------------------

/// One child process's startup measurement. Plain-old-data so it can be
/// shipped over a pipe from a forked child.
struct StartupProbe {
  int32_t ok = 0;
  double load_ms = 0.0;   ///< artifact open/decode alone
  double ttfq_ms = 0.0;   ///< load + engine build + first TopK answered
  double rss_delta_kb = 0.0;  ///< VmRSS growth across the whole probe
  double mapped_mb = 0.0;     ///< v2 only: mapping size
  double resident_mb = 0.0;   ///< v2 only: pages faulted in by the query
};

/// VmRSS in KB from /proc/self/status (0 where there is no procfs).
uint64_t ReadVmRssKb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f ? static_cast<uint64_t>(f.tellg()) : 0;
}

/// Cold-start measurement: load the artifact (auto layout), build an
/// engine, answer one query. Run inside a fresh process so heap decode
/// cost, RSS growth and page-fault residency are attributable to THIS
/// artifact rather than whatever the bench did before.
StartupProbe MeasureStartup(const std::string& path) {
  StartupProbe p;
  const uint64_t rss0 = ReadVmRssKb();
  Stopwatch sw;
  Result<serve::FrozenModel> model = serve::LoadFrozenModelAuto(path);
  if (!model.ok()) return p;
  p.load_ms = static_cast<double>(sw.ElapsedMicros()) / 1000.0;
  serve::ServingEngine engine(&*model, {.max_batch = 1,
                                        .batch_deadline_us = 0,
                                        .cache_capacity = 16,
                                        .pool = nullptr});
  serve::TopKRequest req;
  req.members = {0, 1, 2};
  req.k = 10;
  Result<serve::TopKResult> r = engine.Submit(std::move(req)).get();
  if (!r.ok()) return p;
  p.ttfq_ms = static_cast<double>(sw.ElapsedMicros()) / 1000.0;
  p.rss_delta_kb = static_cast<double>(ReadVmRssKb() - rss0);
  if (model->is_mapped()) {
    p.mapped_mb = static_cast<double>(model->mapping->mapped_bytes()) / 1048576.0;
    p.resident_mb =
        static_cast<double>(model->mapping->ResidentBytes()) / 1048576.0;
  }
  p.ok = 1;
  return p;
}

/// Forks, measures in the child, ships the probe back over a pipe. The
/// caller must not have spawned any threads yet (fork + engine threads
/// don't mix); Main runs the big-world section first for exactly this
/// reason. Falls back to in-process measurement where fork is missing.
StartupProbe MeasureStartupInChild(const std::string& path) {
#if KGAG_BENCH_HAS_FORK
  int fds[2];
  if (pipe(fds) != 0) return MeasureStartup(path);
  std::cout.flush();
  std::cerr.flush();
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    StartupProbe p = MeasureStartup(path);
    const ssize_t written = write(fds[1], &p, sizeof(p));
    _exit(written == static_cast<ssize_t>(sizeof(p)) ? 0 : 1);
  }
  close(fds[1]);
  StartupProbe p;
  const ssize_t n = read(fds[0], &p, sizeof(p));
  close(fds[0]);
  int status = 0;
  if (pid > 0) waitpid(pid, &status, 0);
  if (pid < 0 || n != static_cast<ssize_t>(sizeof(p))) p = StartupProbe{};
  return p;
#else
  return MeasureStartup(path);
#endif
}

/// Group-shaped big-world traffic: 60% of requests hit a 16-group hot
/// set, the rest draw fresh groups from the world's deterministic
/// membership; a sprinkle carry exclusion lists (same skew profile as
/// MakeScaledRequests, but the member sets are real world groups).
std::vector<serve::TopKRequest> MakeBigWorldRequests(
    const synthetic::BigWorldGen& gen, size_t n) {
  Rng rng(913);
  const auto num_groups = static_cast<int>(gen.spec().num_groups);
  const auto num_items = static_cast<int>(gen.spec().num_items);
  constexpr int kHotGroups = 16;
  std::vector<serve::TopKRequest> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    serve::TopKRequest r;
    const uint64_t g = rng.UniformInt(0, 9) < 6
                           ? static_cast<uint64_t>(
                                 rng.UniformInt(0, kHotGroups - 1))
                           : static_cast<uint64_t>(
                                 rng.UniformInt(0, num_groups - 1));
    r.members = gen.GroupMembers(g);
    if (rng.UniformInt(0, 9) < 2) {
      for (int e = 0; e < 4; ++e) {
        r.exclude_seen.push_back(
            static_cast<ItemId>(rng.UniformInt(0, num_items - 1)));
      }
    }
    r.k = 10;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

struct BigWorldReport {
  synthetic::BigWorldSpec spec;
  double freeze_v2_ms = 0.0;
  double freeze_v1_ms = 0.0;
  uint64_t v2_bytes = 0;
  uint64_t v1_bytes = 0;
  StartupProbe v1_heap;          ///< v1 artifact, decode-to-heap load
  StartupProbe v2_mmap;          ///< v2 artifact, first process to map it
  StartupProbe v2_second;        ///< v2 again — page cache already warm
  double ttfq_speedup = 0.0;     ///< v1 TTFQ / v2 TTFQ
  bool ttfq_gate = false;        ///< >= 10x, full scale only
  bool score_bit_identical = false;
  PhaseResult mmap_batched;
  PhaseResult heap_batched;
  bool ok = false;
};

/// Freezes the big world in both layouts, probes startup in forked
/// children, proves mmap/heap score bit-identity, then serves the same
/// stream from both models. MUST run before any engine exists in this
/// process (see MeasureStartupInChild).
BigWorldReport RunBigWorld(const Options& opt) {
  BigWorldReport rep;
  synthetic::BigWorldSpec spec;
  if (opt.smoke) {
    spec.num_users = 20'000;
    spec.num_items = 4'000;
    spec.num_groups = 2'000;
    spec.dim = 32;
  }
  rep.spec = spec;
  const synthetic::BigWorldGen gen(spec);
  const serve::BigWorldFreezeOptions freeze_opts;  // fp16, the big default
  const std::string v2_path = "bigworld_bench.srv2";
  const std::string v1_path = "bigworld_bench.srv1";

  Stopwatch sw;
  const Status s2 = serve::FreezeBigWorldV2(gen, freeze_opts, v2_path);
  rep.freeze_v2_ms = static_cast<double>(sw.ElapsedMicros()) / 1000.0;
  sw.Restart();
  const Status s1 = serve::FreezeBigWorldV1(gen, freeze_opts, v1_path);
  rep.freeze_v1_ms = static_cast<double>(sw.ElapsedMicros()) / 1000.0;
  if (!s1.ok() || !s2.ok()) {
    std::cerr << "big-world freeze failed: "
              << (s2.ok() ? s1 : s2).ToString() << "\n";
    return rep;
  }
  rep.v2_bytes = FileBytes(v2_path);
  rep.v1_bytes = FileBytes(v1_path);
  std::cout << "big world: " << spec.num_users << " users x "
            << spec.num_items << " items x " << spec.num_groups
            << " groups, dim " << spec.dim << "; froze v2 "
            << rep.v2_bytes << " B in " << rep.freeze_v2_ms << " ms, v1 "
            << rep.v1_bytes << " B in " << rep.freeze_v1_ms << " ms\n";

  // Startup probes, one fresh process each. The second v2 mapping is the
  // page-cache-sharing claim: its pages are already resident system-wide.
  rep.v1_heap = MeasureStartupInChild(v1_path);
  rep.v2_mmap = MeasureStartupInChild(v2_path);
  rep.v2_second = MeasureStartupInChild(v2_path);
  rep.ttfq_speedup = rep.v2_mmap.ttfq_ms > 0.0
                         ? rep.v1_heap.ttfq_ms / rep.v2_mmap.ttfq_ms
                         : 0.0;
  rep.ttfq_gate = opt.smoke || rep.ttfq_speedup >= 10.0;
  auto print_probe = [](const char* name, const StartupProbe& p) {
    std::cout << "  startup " << name << ": load " << p.load_ms
              << " ms, ttfq " << p.ttfq_ms << " ms, rss +"
              << p.rss_delta_kb / 1024.0 << " MB";
    if (p.mapped_mb > 0.0) {
      std::cout << ", mapped " << p.mapped_mb << " MB (resident "
                << p.resident_mb << " MB)";
    }
    std::cout << (p.ok ? "" : "  [FAILED]") << "\n";
  };
  print_probe("v1-heap", rep.v1_heap);
  print_probe("v2-mmap", rep.v2_mmap);
  print_probe("v2-mmap-2nd-proc", rep.v2_second);
  std::cout << "  ttfq speedup v2/v1: " << rep.ttfq_speedup << "x\n";

  // Score bit-identity: the same world's groups scored through the heap
  // decode of v1 and the zero-copy mapping of v2 must agree to the bit
  // (the blobs hold the same bytes and RepView funnels both through one
  // kernel path — this check keeps that structural claim honest).
  Result<serve::FrozenModel> heap = serve::LoadFrozenModelAuto(v1_path);
  Result<serve::FrozenModel> mapped = serve::LoadFrozenModelMmap(v2_path);
  KGAG_CHECK(heap.ok()) << heap.status().ToString();
  KGAG_CHECK(mapped.ok()) << mapped.status().ToString();
  rep.score_bit_identical = true;
  for (uint64_t g = 0; g < 8; ++g) {
    const std::vector<UserId> members = gen.GroupMembers(g);
    Result<serve::GroupRep> rh = serve::BuildGroupRep(*heap, members);
    Result<serve::GroupRep> rm = serve::BuildGroupRep(*mapped, members);
    KGAG_CHECK(rh.ok() && rm.ok());
    const std::vector<double> sh = serve::ScoreAllItems(*heap, *rh);
    const std::vector<double> sm = serve::ScoreAllItems(*mapped, *rm);
    rep.score_bit_identical &=
        sh.size() == sm.size() &&
        std::memcmp(sh.data(), sm.data(), sh.size() * sizeof(double)) == 0;
  }
  std::cout << "  mmap vs heap scores: "
            << (rep.score_bit_identical ? "bit-identical" : "DIVERGED")
            << "\n";

  // The headline serving phase: same stream, both load paths.
  const size_t n = opt.requests > 0 ? opt.requests : (opt.smoke ? 32 : 96);
  const std::vector<serve::TopKRequest> reqs = MakeBigWorldRequests(gen, n);
  const serve::ServingEngine::Options engine_opts = {.max_batch = 16,
                                                     .batch_deadline_us = 200,
                                                     .cache_capacity = 256,
                                                     .pool = nullptr};
  rep.mmap_batched = RunPhase("mmap_batched", &*mapped, engine_opts, reqs);
  rep.heap_batched = RunPhase("heap_batched", &*heap, engine_opts, reqs);
  for (const PhaseResult& r : {rep.mmap_batched, rep.heap_batched}) {
    std::cout << "  " << r.mode << ": " << r.qps << " qps (" << r.wall_ms
              << " ms), p50 " << r.p50_us << " us, p99 " << r.p99_us
              << " us, cache hit-rate " << r.cache_hit_rate << "\n";
  }

  rep.ok = rep.v1_heap.ok != 0 && rep.v2_mmap.ok != 0 &&
           rep.v2_second.ok != 0 && rep.score_bit_identical && rep.ttfq_gate;
  return rep;
}

void WriteStartupProbe(bench::JsonWriter* w, const char* key,
                       const StartupProbe& p) {
  w->BeginObject(key);
  w->Field("ok", p.ok != 0);
  w->Field("load_ms", p.load_ms);
  w->Field("ttfq_ms", p.ttfq_ms);
  w->Field("rss_delta_kb", p.rss_delta_kb);
  w->Field("mapped_mb", p.mapped_mb);
  w->Field("resident_mb", p.resident_mb);
  w->EndObject();
}

void WriteBigWorldReport(bench::JsonWriter* w, const BigWorldReport& rep) {
  w->BeginObject("big_world");
  w->BeginObject("spec");
  w->Field("num_users", rep.spec.num_users);
  w->Field("num_items", rep.spec.num_items);
  w->Field("num_groups", rep.spec.num_groups);
  w->Field("dim", rep.spec.dim);
  w->Field("group_size", rep.spec.group_size);
  w->Field("precision", "fp16");
  w->Field("seed", rep.spec.seed);
  w->EndObject();
  w->Field("freeze_v2_ms", rep.freeze_v2_ms);
  w->Field("freeze_v1_ms", rep.freeze_v1_ms);
  w->Field("v2_artifact_bytes", rep.v2_bytes);
  w->Field("v1_artifact_bytes", rep.v1_bytes);
  w->Field("score_bit_identical", rep.score_bit_identical);
  w->BeginArray("phases");
  for (const PhaseResult& r : {rep.mmap_batched, rep.heap_batched}) {
    w->BeginObject();
    w->Field("mode", r.mode);
    w->Field("requests", r.requests);
    w->Field("batches", r.batches);
    w->Field("wall_ms", r.wall_ms);
    w->Field("qps", r.qps);
    w->Field("p50_us", r.p50_us);
    w->Field("p99_us", r.p99_us);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
  w->Newline();
  w->BeginObject("startup");
  WriteStartupProbe(w, "v1_heap", rep.v1_heap);
  WriteStartupProbe(w, "v2_mmap", rep.v2_mmap);
  WriteStartupProbe(w, "v2_mmap_second_process", rep.v2_second);
  w->Field("ttfq_speedup_v2_over_v1", rep.ttfq_speedup);
  w->Field("ttfq_ge_10x", rep.ttfq_speedup >= 10.0);
  w->EndObject();
}

// --------------------------------------------------------------------------
// Online section: the freshness-vs-throughput curve (DESIGN.md §15).
//
// One online world, one checkpointed warm model, one deterministic
// interaction stream — served at three refresh cadences. "frozen" never
// refreshes (maximum throughput, zero freshness); "slow" and "fast"
// interleave OnlineTrainer refreshes with the request load, hot-swapping
// each published artifact into the live engine. Per cadence we record
// the serving side (qps, p50/p99, swap count, failed MUST be 0 — swaps
// are zero-downtime) and the freshness side (cold-start hit@k/mean-rank
// on unseen-member scenarios, before the run vs on the final artifact).

struct OnlineCadence {
  std::string name;
  size_t events_per_refresh = 0;  ///< 0 = never refresh
  uint64_t refreshes = 0;
  uint64_t swaps = 0;
  size_t requests = 0;
  uint64_t failed = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  online::ColdStartReport cold_after;
};

struct OnlineReport {
  std::string world;
  int num_users = 0;
  int cold_users = 0;
  size_t cold_cases = 0;
  online::ColdStartReport cold_before;
  std::vector<OnlineCadence> cadences;
  bool zero_failed = true;
};

OnlineReport RunOnlineSection(bool smoke) {
  namespace fs = std::filesystem;
  constexpr uint64_t kSeed = 777;
  constexpr int kColdUsers = 16;
  constexpr size_t kColdK = 10;
  const fs::path dir = fs::temp_directory_path() / "kgag_bench_online";
  fs::remove_all(dir);
  fs::create_directories(dir);

  OnlineReport report;
  const GroupRecDataset world =
      online::MakeOnlineWorld(kSeed, smoke ? 0.12 : 0.25, kColdUsers);
  report.world = world.name;
  report.num_users = world.num_users;
  report.cold_users = kColdUsers;

  KgagConfig cfg;
  cfg.propagation.dim = 16;
  cfg.propagation.depth = 1;
  cfg.propagation.sample_size = 4;
  cfg.propagation.final_tanh = false;
  cfg.pairs_per_epoch = smoke ? 32 : 96;
  cfg.batch_size = 8;
  cfg.eval_tree_samples = 1;
  cfg.select_by_validation = false;
  cfg.seed = 31;

  // Offline phase: warm the model and leave the checkpoint every online
  // trainer below resumes from.
  const std::string ckpt_dir = (dir / "ckpt").string();
  std::shared_ptr<const serve::FrozenModel> initial;
  {
    auto model = KgagModel::Create(&world, cfg);
    KGAG_CHECK(model.ok());
    (*model)->FineTuneEpoch();
    (*model)->FineTuneEpoch();
    ckpt::CheckpointManager mgr({.dir = ckpt_dir});
    KGAG_CHECK(mgr.Save((*model)->CaptureTrainingState(2, false, 0, 0.0,
                                                       nullptr))
                   .ok());
    Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
    KGAG_CHECK(frozen.ok());
    initial = std::make_shared<const serve::FrozenModel>(std::move(*frozen));
  }

  const online::InteractionStream stream(
      online::StreamForWorld(world, kSeed, kColdUsers));
  const online::ColdStartScenarios scenarios =
      online::BuildColdStartScenarios(world, stream, 0, smoke ? 600 : 2000,
                                      /*max_cases=*/12);
  report.cold_cases = scenarios.unseen_member.size();
  report.cold_before =
      online::EvaluateColdStart(*initial, scenarios.unseen_member, kColdK);

  struct Cadence {
    const char* name;
    size_t events;
  };
  const Cadence plan[] = {
      {"frozen", 0},
      {"slow", smoke ? size_t{96} : size_t{256}},
      {"fast", smoke ? size_t{32} : size_t{64}},
  };
  const size_t total_requests = smoke ? 240 : 960;

  Rng req_rng(4321);
  for (const Cadence& c : plan) {
    OnlineCadence row;
    row.name = c.name;
    row.events_per_refresh = c.events;

    online::OnlineTrainer::Options topt;
    topt.config = cfg;
    topt.checkpoint_dir = ckpt_dir;
    topt.artifact_path = (dir / (std::string(c.name) + ".srv")).string();
    topt.micro_epochs = 1;
    topt.save_checkpoints = false;  // every cadence resumes the SAME state
    auto trainer = online::OnlineTrainer::Create(
        online::MakeOnlineWorld(kSeed, smoke ? 0.12 : 0.25, kColdUsers),
        stream, topt);
    KGAG_CHECK(trainer.ok());

    serve::ServingEngine::Options eopt;
    eopt.max_batch = 8;
    eopt.batch_deadline_us = 50;
    eopt.cache_capacity = 256;
    eopt.record_latency = true;
    serve::ServingEngine engine(initial, eopt);

    // Client side: closed-loop submitters over real groups plus ad-hoc
    // groups that include a cold member (the requests a refresh helps).
    std::vector<serve::TopKRequest> reqs;
    reqs.reserve(total_requests);
    for (size_t i = 0; i < total_requests; ++i) {
      serve::TopKRequest r;
      if (i % 4 == 3 && !scenarios.adhoc_group.empty()) {
        r.members =
            scenarios.adhoc_group[i % scenarios.adhoc_group.size()].members;
      } else {
        const GroupId g = static_cast<GroupId>(
            req_rng.UniformInt(0, world.groups.num_groups() - 1));
        const auto span = world.groups.MembersOf(g);
        r.members.assign(span.begin(), span.end());
      }
      r.k = 10;
      reqs.push_back(std::move(r));
    }

    std::atomic<size_t> next{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<bool> done{false};
    Stopwatch wall;
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
      clients.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= reqs.size()) break;
          if (!engine.Submit(reqs[i]).get().ok()) ++failed;
        }
        done = true;
      });
    }
    // Refresher (the bench thread): stream -> fine-tune -> publish ->
    // hot-swap, as long as the load is running.
    while (!done.load()) {
      if (c.events == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      (*trainer)->ApplyEvents(c.events);
      Result<online::RefreshReport> r = (*trainer)->Refresh();
      KGAG_CHECK(r.ok());
      ++row.refreshes;
      Result<serve::FrozenModel> published =
          serve::LoadFrozenModelAuto(topt.artifact_path);
      KGAG_CHECK(published.ok());
      KGAG_CHECK(engine
                     .SwapModel(std::make_shared<const serve::FrozenModel>(
                                    std::move(*published)),
                                "v" + std::to_string(r->version))
                     .ok());
    }
    for (std::thread& t : clients) t.join();
    row.wall_ms = wall.ElapsedMicros() / 1000.0;

    std::vector<double> samples = engine.TakeLatencySamples();
    row.requests = reqs.size();
    row.failed = failed.load();
    row.swaps = engine.swaps();
    row.qps = row.wall_ms > 0 ? 1000.0 * reqs.size() / row.wall_ms : 0.0;
    row.p50_us = Percentile(samples, 0.50);
    row.p99_us = Percentile(samples, 0.99);
    row.cold_after = online::EvaluateColdStart(
        *engine.model_ref(), scenarios.unseen_member, kColdK);
    report.zero_failed = report.zero_failed && row.failed == 0;
    report.cadences.push_back(std::move(row));
  }
  fs::remove_all(dir);
  return report;
}

void WriteOnlineReport(bench::JsonWriter* w, const OnlineReport& rep) {
  const auto cold = [&](const online::ColdStartReport& r) {
    w->Field("cases", static_cast<uint64_t>(r.cases));
    w->Field("hit_at_k", r.hit_at_k);
    w->Field("ndcg_at_k", r.ndcg_at_k);
    w->Field("mean_rank", r.mean_rank);
  };
  w->BeginObject("online");
  w->Field("world", rep.world);
  w->Field("num_users", rep.num_users);
  w->Field("reserved_cold_users", rep.cold_users);
  w->Field("zero_failed_requests", rep.zero_failed);
  w->BeginObject("cold_start_before");
  cold(rep.cold_before);
  w->EndObject();
  w->BeginArray("cadences");
  w->Newline();
  for (const OnlineCadence& c : rep.cadences) {
    w->BeginObject();
    w->Field("cadence", c.name);
    w->Field("events_per_refresh", static_cast<uint64_t>(c.events_per_refresh));
    w->Field("refreshes", c.refreshes);
    w->Field("swaps", c.swaps);
    w->Field("requests", static_cast<uint64_t>(c.requests));
    w->Field("failed", c.failed);
    w->Field("wall_ms", c.wall_ms);
    w->Field("qps", c.qps);
    w->Field("p50_us", c.p50_us);
    w->Field("p99_us", c.p99_us);
    w->BeginObject("cold_start_after");
    cold(c.cold_after);
    w->EndObject();
    w->EndObject();
    w->Newline();
  }
  w->EndArray();
  w->EndObject();
}

int Main(int argc, char** argv) {
  Options opt;
  bool out_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--acceptance") {
      opt.acceptance = true;
    } else if (arg == "--overhead") {
      opt.overhead = true;
    } else if (arg == "--net") {
      opt.net = true;
    } else if (arg == "--connect" || arg.rfind("--connect=", 0) == 0) {
      std::string target;
      if (arg == "--connect" && i + 1 < argc) target = argv[++i];
      else if (arg != "--connect") target = arg.substr(sizeof("--connect=") - 1);
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "--connect expects HOST:PORT\n";
        return 2;
      }
      opt.connect_host = target.substr(0, colon);
      opt.connect_port = std::atoi(target.c_str() + colon + 1);
    } else if (arg == "--net_users" && i + 1 < argc) {
      opt.net_users = std::atoi(argv[++i]);
    } else if (arg.rfind("--net_users=", 0) == 0) {
      opt.net_users = std::atoi(arg.c_str() + sizeof("--net_users=") - 1);
    } else if (arg == "--requests" && i + 1 < argc) {
      opt.requests = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
      out_set = true;
    } else {
      std::cerr << "usage: bench_serve [--smoke] [--acceptance]"
                << " [--overhead] [--net] [--connect HOST:PORT]"
                << " [--net_users N] [--requests N] [--out PATH]\n";
      return 2;
    }
  }
  if (opt.net) {
    if (!out_set) opt.out = "BENCH_serve_net.json";
    return RunNet(opt);
  }
  if (opt.overhead) {
    if (!out_set) opt.out = "BENCH_serve_overhead.json";
    return RunOverhead(opt);
  }
  const size_t n_requests =
      opt.requests > 0 ? opt.requests : (opt.smoke ? 96 : 384);

  // --- Big world first: its startup probes fork, so they must run while
  //     this process is still single-threaded (no engines yet). ----------
  const BigWorldReport big = RunBigWorld(opt);

  // --- The full-precision base model + request stream. -------------------
  serve::FrozenModel base;
  std::vector<serve::TopKRequest> reqs;
  std::string dataset_name;
  if (opt.smoke) {
    const GroupRecDataset ds =
        MakeMovieLensRandDataset(bench::WorldSeed(), 0.12);
    KgagConfig cfg = bench::DefaultKgagConfig();
    Result<std::unique_ptr<KgagModel>> model = KgagModel::Create(&ds, cfg);
    KGAG_CHECK(model.ok()) << model.status().ToString();
    Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
    KGAG_CHECK(frozen.ok()) << frozen.status().ToString();
    base = *std::move(frozen);
    reqs = MakeSmokeRequests(ds, n_requests);
    dataset_name = ds.name;
  } else {
    base = MakeScaledModel();
    reqs = MakeScaledRequests(base.num_users, base.num_items, n_requests);
    dataset_name = "synthetic-scaled";
  }
  std::cout << "workload: " << base.num_users << " users x " << base.num_items
            << " items, dim " << base.dim << ", " << n_requests
            << " requests/phase, quant ISA level "
            << kernels::QuantIsaLevel() << "\n";

  // --- Per-precision sweep: round-trip gate + both engine phases. --------
  const QuantType tiers[] = {QuantType::kFp64, QuantType::kFp32,
                             QuantType::kFp16, QuantType::kInt8};
  std::vector<TierResult> results;
  for (QuantType tier : tiers) {
    TierResult tr;
    tr.precision = tier;
    Result<serve::FrozenModel> model =
        serve::QuantizeFrozenModel(base, tier, /*block=*/0);
    KGAG_CHECK(model.ok()) << model.status().ToString();
    tr.bytes_per_entity = serve::RepBytesPerEntity(*model);

    std::string encoded;
    KGAG_CHECK(serve::EncodeFrozenModel(*model, &encoded).ok());
    Result<serve::FrozenModel> decoded = serve::DecodeFrozenModel(encoded);
    std::string re_encoded;
    tr.round_trip =
        decoded.ok() &&
        serve::EncodeFrozenModel(*decoded, &re_encoded).ok() &&
        re_encoded == encoded;
    tr.artifact_bytes = encoded.size();
    std::cout << QuantTypeName(tier) << ": artifact " << tr.artifact_bytes
              << " bytes (" << tr.bytes_per_entity
              << " rep bytes/entity), round trip "
              << (tr.round_trip ? "byte-stable" : "DIVERGED") << "\n";

    tr.naive = RunPhase("naive", &*model,
                        {.max_batch = 1,
                         .batch_deadline_us = 0,
                         .cache_capacity = 256,
                         .pool = nullptr},
                        reqs);
    tr.batched = RunPhase("batched", &*model,
                          {.max_batch = 16,
                           .batch_deadline_us = 200,
                           .cache_capacity = 256,
                           .pool = nullptr},
                          reqs);
    for (const PhaseResult& r : {tr.naive, tr.batched}) {
      std::cout << "  " << r.mode << ": " << r.qps << " qps (" << r.wall_ms
                << " ms), " << r.batches << " batches (mean " << r.mean_batch
                << "), " << r.coalesced << " coalesced, p50 " << r.p50_us
                << " us, p99 " << r.p99_us << " us (hdr p50 " << r.hdr_p50_us
                << " / p99 " << r.hdr_p99_us << ", "
                << (r.hdr_agrees ? "agrees" : "DISAGREES")
                << "), cache hit-rate " << r.cache_hit_rate << "\n";
    }
    results.push_back(std::move(tr));
  }

  const TierResult& fp64 = results[0];
  const TierResult& fp32 = results[1];
  const TierResult& int8 = results[3];
  bool round_trips_ok = true;
  for (const TierResult& tr : results) round_trips_ok &= tr.round_trip;
  bool hdr_ok = true;
  for (const TierResult& tr : results) {
    hdr_ok &= tr.naive.hdr_agrees && tr.batched.hdr_agrees;
  }
  const bool batched_wins = fp64.batched.qps >= fp64.naive.qps;
  const double int8_speedup =
      fp32.batched.qps == 0.0 ? 0.0 : int8.batched.qps / fp32.batched.qps;
  // The quantization payoff gate only binds at serving scale; the smoke
  // shape fits toy caches where precision barely moves the needle.
  const bool int8_wins = opt.smoke || int8_speedup >= 1.5;
  std::cout << "batched/naive (fp64): "
            << (fp64.naive.qps == 0.0 ? 0.0
                                      : fp64.batched.qps / fp64.naive.qps)
            << "x\nint8/fp32 batched: " << int8_speedup << "x\n";

  if (opt.acceptance) {
    const bool ok =
        round_trips_ok && batched_wins && int8_wins && hdr_ok && big.ok;
    std::cout << (ok ? "acceptance OK\n" : "acceptance FAILED\n");
    if (!round_trips_ok) std::cerr << "FAIL: artifact round trip diverged\n";
    if (!batched_wins) {
      std::cerr << "FAIL: fp64 batched throughput below naive ("
                << fp64.batched.qps << " < " << fp64.naive.qps << " qps)\n";
    }
    if (!int8_wins) {
      std::cerr << "FAIL: int8 batched throughput below 1.5x fp32 ("
                << int8_speedup << "x)\n";
    }
    if (!hdr_ok) {
      std::cerr << "FAIL: HDR latency percentiles diverged from raw "
                << "samples by more than one bucket width\n";
    }
    if (!big.score_bit_identical) {
      std::cerr << "FAIL: mmap and heap scores diverged on the big world\n";
    }
    if (!big.ttfq_gate) {
      std::cerr << "FAIL: v2 mmap TTFQ below 10x v1 heap decode ("
                << big.ttfq_speedup << "x)\n";
    }
    if (!(big.v1_heap.ok != 0 && big.v2_mmap.ok != 0 &&
          big.v2_second.ok != 0)) {
      std::cerr << "FAIL: a big-world startup probe did not complete\n";
    }
    if (opt.out == "BENCH_serve.json") return ok ? 0 : 1;
  }

  // --- Open-loop sweep over a real loopback socket (DESIGN.md §13). ------
  const NetReport net_report =
      RunInProcessNetSweep(opt.requests > 0 ? opt.requests
                                            : (opt.smoke ? 48 : 256),
                           opt.smoke);

  // --- Online world: refresh cadences + hot swaps under load. ------------
  const OnlineReport online_report = RunOnlineSection(opt.smoke);

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  bench::JsonWriter w(&out);
  w.BeginObject();
  w.Newline();
  w.Field("bench", "bench_serve");
  w.Newline();
  w.Field("smoke", opt.smoke);
  w.Newline();
  w.BeginObject("workload");
  w.Field("dataset", dataset_name);
  w.Field("num_users", base.num_users);
  w.Field("num_items", base.num_items);
  w.Field("dim", base.dim);
  w.Field("group_size", base.group_size);
  w.Field("requests", n_requests);
  w.Field("k", 10);
  w.Field("quant_isa_level", kernels::QuantIsaLevel());
  w.EndObject();
  w.Newline();
  WriteBigWorldReport(&w, big);
  w.Newline();
  w.BeginArray("precisions");
  w.Newline();
  for (const TierResult& tr : results) {
    w.BeginObject();
    w.Field("precision", QuantTypeName(tr.precision));
    w.Field("artifact_bytes", tr.artifact_bytes);
    w.Field("rep_bytes_per_entity", tr.bytes_per_entity);
    w.Field("round_trip_byte_stable", tr.round_trip);
    w.BeginArray("phases");
    for (const PhaseResult& r : {tr.naive, tr.batched}) {
      w.BeginObject();
      w.Field("mode", r.mode);
      w.Field("requests", r.requests);
      w.Field("batches", r.batches);
      w.Field("mean_batch_size", r.mean_batch);
      w.Field("coalesced_requests", r.coalesced);
      w.Field("wall_ms", r.wall_ms);
      w.Field("qps", r.qps);
      w.Field("p50_us", r.p50_us);
      w.Field("p99_us", r.p99_us);
      w.Field("hdr_count", r.hdr_count);
      w.Field("hdr_p50_us", r.hdr_p50_us);
      w.Field("hdr_p99_us", r.hdr_p99_us);
      w.Field("hdr_agrees", r.hdr_agrees);
      w.BeginObject("cache");
      w.Field("hits", r.cache_hits);
      w.Field("misses", r.cache_misses);
      w.Field("hit_rate", r.cache_hit_rate);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.Newline();
  }
  w.EndArray();
  w.Newline();
  WriteNetReport(&w, net_report);
  w.Newline();
  WriteOnlineReport(&w, online_report);
  w.Newline();
  w.Field("int8_over_fp32_batched_speedup", int8_speedup);
  w.Newline();
  w.Field("batched_ge_naive", batched_wins);
  w.Newline();
  w.Field("int8_ge_1_5x_fp32", int8_speedup >= 1.5);
  w.Newline();
  w.Field("hdr_percentiles_agree", hdr_ok);
  w.Newline();
  w.Field("big_world_ok", big.ok);
  w.Newline();
  w.EndObject();
  w.Newline();
  std::cout << "wrote " << opt.out << "\n";
  if (!online_report.zero_failed) {
    std::cerr << "FAIL: requests failed during online hot swaps\n";
  }
  return (round_trips_ok && batched_wins && int8_wins && hdr_ok && big.ok &&
          online_report.zero_failed)
             ? 0
             : 1;
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) { return kgag::Main(argc, argv); }
