// bench_serve: online-serving harness (DESIGN.md §10). Freezes a model
// into the KGAGSRV1 artifact, proves the artifact round trip is
// byte-stable, then drives the same request stream through two
// ServingEngine configurations:
//   naive    max_batch=1  — one GEMM per request (the item matrix is
//                           streamed from memory once per request)
//   batched  max_batch=16 — the dispatcher coalesces the queue and the
//                           item matrix is streamed once per BATCH
// and reports throughput, p50/p99 request latency (from the
// serve.request_latency_us histogram), batch-size distribution and
// group-cache hit rate. Batched and naive results are bit-identical by
// construction (pinned in tests/test_serve.cc), so this harness is purely
// about throughput.
//
// Usage: bench_serve [--smoke] [--acceptance] [--requests N] [--out PATH]
//   --smoke       tiny dataset + short request stream (CI wiring check)
//   --acceptance  gate only: artifact round trip must be byte-stable and
//                 batched throughput must be >= naive throughput; no JSON
//                 artifact unless --out is given
//   --requests    requests per phase (default 512, smoke 96)
//   --out         output path (default ./BENCH_serve.json)
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include <cstdlib>
#include <span>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/synthetic/standard_datasets.h"
#include "models/kgag_model.h"
#include "obs/metrics.h"
#include "serve/frozen_model.h"
#include "serve/serving_engine.h"

namespace kgag {
namespace {

struct Options {
  bool smoke = false;
  bool acceptance = false;
  size_t requests = 0;  // 0 = pick by mode
  std::string out = "BENCH_serve.json";
};

/// Deterministic, popularity-skewed request stream: over half the
/// traffic concentrates on a handful of hot groups (as real serving
/// traffic does — that skew is what the rep cache and the in-batch
/// coalescing exploit); the rest is uniform over all groups with some
/// ad-hoc membership edits, plus a sprinkle of exclusion lists.
std::vector<serve::TopKRequest> MakeRequests(const GroupRecDataset& ds,
                                             size_t n) {
  Rng rng(913);
  std::vector<serve::TopKRequest> reqs;
  reqs.reserve(n);
  const int num_groups = static_cast<int>(ds.groups.num_groups());
  const int num_hot = std::min(8, num_groups);
  for (size_t i = 0; i < n; ++i) {
    serve::TopKRequest r;
    GroupId g;
    if (rng.UniformInt(0, 9) < 6) {
      g = static_cast<GroupId>(rng.UniformInt(0, num_hot - 1));
    } else {
      g = static_cast<GroupId>(rng.UniformInt(0, num_groups - 1));
    }
    std::span<const UserId> members = ds.groups.MembersOf(g);
    r.members.assign(members.begin(), members.end());
    if (g >= num_hot && rng.UniformInt(0, 9) < 3) {
      // Ad-hoc group: a prefix of the trained membership (size 1..L-1).
      const int keep =
          rng.UniformInt(1, static_cast<int>(r.members.size()) - 1);
      r.members.resize(static_cast<size_t>(keep));
    }
    if (rng.UniformInt(0, 9) < 2) {
      for (int e = 0; e < 4; ++e) {
        r.exclude_seen.push_back(static_cast<ItemId>(
            rng.UniformInt(0, static_cast<int>(ds.num_items) - 1)));
      }
    }
    r.k = 10;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

/// serve.request_latency_us bucket counts right now (all-zero when the
/// histogram has not been registered yet).
std::vector<uint64_t> LatencySnapshot() {
  const obs::Histogram* h = obs::MetricsRegistry::Global().FindHistogram(
      "serve.request_latency_us");
  if (h == nullptr) {
    return std::vector<uint64_t>(obs::LatencyBoundsUs().size() + 1, 0);
  }
  return h->BucketCounts();
}

/// Approximate quantile of the observations made between two snapshots:
/// the upper bound of the bucket holding the p-quantile of the delta.
double QuantileOfDelta(const std::vector<uint64_t>& before,
                       const std::vector<uint64_t>& after, double p) {
  const std::vector<double>& bounds = obs::LatencyBoundsUs();
  uint64_t total = 0;
  for (size_t i = 0; i < after.size(); ++i) total += after[i] - before[i];
  if (total == 0) return 0.0;
  const uint64_t target = static_cast<uint64_t>(p * (total - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < after.size(); ++i) {
    seen += after[i] - before[i];
    if (seen >= target) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

struct PhaseResult {
  std::string mode;
  size_t requests = 0;
  uint64_t batches = 0;
  double mean_batch = 0.0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  uint64_t coalesced = 0;
};

/// Submits the whole stream as one burst and waits for every future —
/// the queue depth is what lets the batched dispatcher coalesce.
PhaseResult RunPhase(const std::string& mode, const serve::FrozenModel* model,
                     serve::ServingEngine::Options engine_opts,
                     const std::vector<serve::TopKRequest>& reqs) {
  const std::vector<uint64_t> before = LatencySnapshot();
  serve::ServingEngine engine(model, engine_opts);
  std::vector<std::future<Result<serve::TopKResult>>> futures;
  futures.reserve(reqs.size());
  Stopwatch sw;
  for (const serve::TopKRequest& r : reqs) futures.push_back(engine.Submit(r));
  for (auto& f : futures) {
    Result<serve::TopKResult> r = f.get();
    KGAG_CHECK(r.ok()) << r.status().ToString();
  }
  const double secs = sw.ElapsedSeconds();

  PhaseResult out;
  out.mode = mode;
  out.requests = reqs.size();
  out.batches = engine.batches_run();
  out.mean_batch = out.batches == 0
                       ? 0.0
                       : static_cast<double>(reqs.size()) /
                             static_cast<double>(out.batches);
  out.wall_ms = secs * 1e3;
  out.qps = secs == 0.0 ? 0.0 : static_cast<double>(reqs.size()) / secs;
  const std::vector<uint64_t> after = LatencySnapshot();
  out.p50_us = QuantileOfDelta(before, after, 0.50);
  out.p99_us = QuantileOfDelta(before, after, 0.99);
  out.cache_hits = engine.cache()->hits();
  out.cache_misses = engine.cache()->misses();
  out.cache_hit_rate = engine.cache()->HitRate();
  out.coalesced = engine.coalesced_requests();
  return out;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--acceptance") {
      opt.acceptance = true;
    } else if (arg == "--requests" && i + 1 < argc) {
      opt.requests = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--smoke] [--acceptance]"
                << " [--requests N] [--out PATH]\n";
      return 2;
    }
  }
  const size_t n_requests =
      opt.requests > 0 ? opt.requests : (opt.smoke ? 96 : 512);

  // Model: architecture from the shared bench config; the weights are the
  // freshly initialized ones — serving throughput does not depend on how
  // trained they are, and skipping Fit() keeps the harness fast.
  const GroupRecDataset ds =
      MakeMovieLensRandDataset(bench::WorldSeed(), opt.smoke ? 0.12 : 0.35);
  KgagConfig cfg = bench::DefaultKgagConfig();
  Result<std::unique_ptr<KgagModel>> model = KgagModel::Create(&ds, cfg);
  KGAG_CHECK(model.ok()) << model.status().ToString();

  // --- Artifact gate: freeze, encode, decode, re-encode, byte-compare. ---
  Result<serve::FrozenModel> frozen = serve::FreezeKgagModel(model->get());
  KGAG_CHECK(frozen.ok()) << frozen.status().ToString();
  std::string encoded;
  KGAG_CHECK(serve::EncodeFrozenModel(*frozen, &encoded).ok());
  Result<serve::FrozenModel> decoded = serve::DecodeFrozenModel(encoded);
  std::string re_encoded;
  const bool round_trip =
      decoded.ok() && serve::EncodeFrozenModel(*decoded, &re_encoded).ok() &&
      re_encoded == encoded;
  std::cout << "artifact: " << encoded.size() << " bytes, round trip "
            << (round_trip ? "byte-stable" : "DIVERGED") << "\n";

  // --- Throughput phases: identical stream, identical cache budget. ------
  const std::vector<serve::TopKRequest> reqs = MakeRequests(ds, n_requests);
  {
    // Warmup outside the timed phases (first-touch registration of the
    // serve.* metrics, lazy allocations inside the engine).
    serve::ServingEngine warm(&*frozen, {.max_batch = 1,
                                         .batch_deadline_us = 0,
                                         .cache_capacity = 0,
                                         .pool = nullptr});
    for (size_t i = 0; i < std::min<size_t>(reqs.size(), 8); ++i) {
      KGAG_CHECK(warm.Submit(reqs[i]).get().ok());
    }
  }
  const PhaseResult naive =
      RunPhase("naive", &*frozen,
               {.max_batch = 1,
                .batch_deadline_us = 0,
                .cache_capacity = 256,
                .pool = nullptr},
               reqs);
  const PhaseResult batched =
      RunPhase("batched", &*frozen,
               {.max_batch = 16,
                .batch_deadline_us = 200,
                .cache_capacity = 256,
                .pool = nullptr},
               reqs);
  for (const PhaseResult& r : {naive, batched}) {
    std::cout << r.mode << ": " << r.requests << " requests in " << r.wall_ms
              << " ms = " << r.qps << " qps, " << r.batches
              << " batches (mean " << r.mean_batch << "), " << r.coalesced
              << " coalesced, p50 " << r.p50_us << " us, p99 " << r.p99_us
              << " us, cache hit-rate " << r.cache_hit_rate << "\n";
  }
  const double speedup = naive.qps == 0.0 ? 0.0 : batched.qps / naive.qps;
  const bool batched_wins = batched.qps >= naive.qps;
  std::cout << "batched/naive throughput: " << speedup << "x\n";

  if (opt.acceptance) {
    const bool ok = round_trip && batched_wins;
    std::cout << (ok ? "acceptance OK\n" : "acceptance FAILED\n");
    if (!round_trip) std::cerr << "FAIL: artifact round trip diverged\n";
    if (!batched_wins) {
      std::cerr << "FAIL: batched throughput below naive (" << batched.qps
                << " < " << naive.qps << " qps)\n";
    }
    if (opt.out == "BENCH_serve.json") return ok ? 0 : 1;
  }

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  bench::JsonWriter w(&out);
  w.BeginObject();
  w.Newline();
  w.Field("bench", "bench_serve");
  w.Newline();
  w.Field("smoke", opt.smoke);
  w.Newline();
  w.BeginObject("workload");
  w.Field("dataset", ds.name);
  w.Field("num_users", frozen->num_users);
  w.Field("num_items", frozen->num_items);
  w.Field("dim", frozen->dim);
  w.Field("group_size", frozen->group_size);
  w.Field("requests", n_requests);
  w.Field("k", 10);
  w.EndObject();
  w.Newline();
  w.BeginObject("artifact");
  w.Field("bytes", encoded.size());
  w.Field("round_trip_byte_stable", round_trip);
  w.EndObject();
  w.Newline();
  w.BeginArray("phases");
  w.Newline();
  for (const PhaseResult& r : {naive, batched}) {
    w.BeginObject();
    w.Field("mode", r.mode);
    w.Field("requests", r.requests);
    w.Field("batches", r.batches);
    w.Field("mean_batch_size", r.mean_batch);
    w.Field("coalesced_requests", r.coalesced);
    w.Field("wall_ms", r.wall_ms);
    w.Field("qps", r.qps);
    w.Field("p50_us", r.p50_us);
    w.Field("p99_us", r.p99_us);
    w.BeginObject("cache");
    w.Field("hits", r.cache_hits);
    w.Field("misses", r.cache_misses);
    w.Field("hit_rate", r.cache_hit_rate);
    w.EndObject();
    w.EndObject();
    w.Newline();
  }
  w.EndArray();
  w.Newline();
  w.Field("batched_over_naive_speedup", speedup);
  w.Newline();
  w.Field("batched_ge_naive", batched_wins);
  w.Newline();
  w.EndObject();
  w.Newline();
  std::cout << "wrote " << opt.out << "\n";
  return (round_trip && batched_wins) ? 0 : 1;
}

}  // namespace
}  // namespace kgag

int main(int argc, char** argv) { return kgag::Main(argc, argv); }
